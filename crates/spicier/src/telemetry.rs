//! Structured telemetry: spans, events, counters, and a crash flight
//! recorder for every analysis in the crate.
//!
//! The paper this repository reproduces makes *invisible* parametric
//! faults observable by adding a small detector to every gate output;
//! this module does the same one level down. The DC recovery ladder,
//! the refactor fast path, the budget checks, and the residual
//! certifier all silently absorb trouble — a run that barely limped
//! home is indistinguishable from a healthy one. Telemetry records the
//! *trajectory* of the computation (Newton residuals per ladder rung,
//! timestep accept/reject decisions, kernel counters, per-corner wall
//! time) so that trajectory can be inspected after the fact.
//!
//! # Architecture
//!
//! * **Gate** — [`enabled`] is the single switch every instrumentation
//!   site checks first. It is driven by the `SPICIER_TRACE` /
//!   `EXP_TELEMETRY` environment variables (read once, cached in a
//!   relaxed atomic) or by the scoped [`with_trace`] guard (used by
//!   tests and benches so they never mutate process environment). When
//!   telemetry is off the check costs two relaxed atomic loads and
//!   nothing else: no allocation, no locking, no time-stamping. Hot
//!   call sites must build their fields *inside* an `if
//!   telemetry::enabled()` block so argument construction is also
//!   skipped.
//! * **Flight recorder** — every [`event`] and [`span`] lands in a
//!   bounded global ring buffer (default 4096 events; oldest dropped
//!   first). On any analysis failure the instrumented code calls
//!   [`record_failure`], which appends the buffered events plus a final
//!   `failure` event to the JSONL dump file — so every
//!   `DcNoConvergence`, `DeadlineExceeded`, or `UntrustedSolution`
//!   ships with the last N solver events that led to it. The dump path
//!   is `SPICIER_TRACE=<path>` or a programmatic [`set_dump_path`]
//!   (the experiment harness points it at
//!   `target/experiments/FLIGHT_RECORDER.jsonl`).
//! * **Summaries** — each analysis attaches a [`TelemetrySummary`]
//!   (wall time, Newton totals, ladder-rung histogram, kernel
//!   [`LuStats`], worst backward error) to its result and, while
//!   telemetry is enabled, merges it into a process-global rollup the
//!   campaign driver drains per experiment via
//!   [`take_global_summary`] to build `RUN_REPORT.json`.
//!
//! # Neutrality contract
//!
//! Telemetry *observes*; it never changes iteration order, pivoting,
//! tolerances, or any numeric result. All 21 experiment CSVs are
//! byte-identical with telemetry fully enabled (enforced by
//! `crates/bench/tests/telemetry.rs` and the CI telemetry job).

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use crate::linalg::LuStats;

// ---------------------------------------------------------------------------
// Enable gate
// ---------------------------------------------------------------------------

/// Environment gate: 0 = not yet read, 1 = off, 2 = on.
static ENV_STATE: AtomicU8 = AtomicU8::new(0);
/// Number of live scoped [`with_trace`] guards across all threads.
static SCOPED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Nesting depth of scoped guards on this thread.
    static TRACE_DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Names of the spans currently open on this thread.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0")
}

#[cold]
fn init_env_state() -> bool {
    let on =
        std::env::var("SPICIER_TRACE").is_ok_and(|v| !v.is_empty()) || env_flag("EXP_TELEMETRY");
    ENV_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Whether telemetry is currently enabled on this thread.
///
/// True when `SPICIER_TRACE` is set to a non-empty path, `EXP_TELEMETRY`
/// is set (non-empty, not `"0"`), or the caller is inside a
/// [`with_trace`] scope. In the fully-disabled steady state this is two
/// relaxed atomic loads; instrumentation sites gate all field
/// construction behind it.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    match ENV_STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => SCOPED.load(Ordering::Relaxed) > 0 && TRACE_DEPTH.with(Cell::get) > 0,
        _ => {
            init_env_state();
            enabled()
        }
    }
}

struct TraceGuard;

impl Drop for TraceGuard {
    fn drop(&mut self) {
        SCOPED.fetch_sub(1, Ordering::Relaxed);
        TRACE_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Runs `f` with telemetry enabled on this thread, without touching
/// process environment. Guards nest; the scope is restored on panic.
pub fn with_trace<R>(f: impl FnOnce() -> R) -> R {
    // Force the env gate out of its uninitialised state first so the
    // scoped branch of `enabled()` is reachable.
    if ENV_STATE.load(Ordering::Relaxed) == 0 {
        init_env_state();
    }
    TRACE_DEPTH.with(|d| d.set(d.get() + 1));
    SCOPED.fetch_add(1, Ordering::Relaxed);
    let _guard = TraceGuard;
    f()
}

// ---------------------------------------------------------------------------
// Events and the flight-recorder ring
// ---------------------------------------------------------------------------

/// A typed field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Signed integer (iteration counts, indices).
    Int(i64),
    /// Floating-point (residuals, voltages, seconds). Non-finite values
    /// serialize as JSON strings (`"NaN"`, `"inf"`, `"-inf"`).
    Float(f64),
    /// Text (rung labels, node names, error details).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// One recorded telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic sequence number (process-global, never reused).
    pub seq: u64,
    /// Microseconds since the recorder first observed an event.
    pub t_us: u64,
    /// Small dense id of the emitting thread.
    pub thread: u64,
    /// `/`-joined names of the spans open when the event was emitted.
    pub span: String,
    /// Event name (`newton_iter`, `step_accept`, `failure`, ...).
    pub name: String,
    /// Key–value payload.
    pub fields: Vec<(String, Value)>,
}

/// Default flight-recorder capacity, in events.
pub const DEFAULT_CAPACITY: usize = 4096;

struct Ring {
    events: VecDeque<Event>,
    seq: u64,
    cap: usize,
    /// Events evicted since the last dump/drain (reported in dumps so a
    /// truncated trajectory is visible as such).
    dropped: u64,
}

static RING: Mutex<Ring> = Mutex::new(Ring {
    events: VecDeque::new(),
    seq: 0,
    cap: DEFAULT_CAPACITY,
    dropped: 0,
});

/// Locks the ring, recovering from poisoning: a panicking sweep corner
/// under `catch_unwind` must not disable telemetry for everyone else.
fn ring_lock() -> MutexGuard<'static, Ring> {
    RING.lock().unwrap_or_else(|e| e.into_inner())
}

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id)
}

fn push_event(name: &str, fields: Vec<(String, Value)>) {
    let t_us = epoch().elapsed().as_micros() as u64;
    let span = SPAN_STACK.with(|s| s.borrow().join("/"));
    let thread = thread_id();
    let mut ring = ring_lock();
    let seq = ring.seq;
    ring.seq += 1;
    if ring.events.len() >= ring.cap {
        ring.events.pop_front();
        ring.dropped += 1;
    }
    ring.events.push_back(Event {
        seq,
        t_us,
        thread,
        span,
        name: name.to_string(),
        fields,
    });
}

/// Records an event with the given name and fields.
///
/// No-op when telemetry is disabled, but callers on hot paths should
/// still gate on [`enabled`] so field construction (string formatting,
/// `Value::Str` allocation) is skipped too.
pub fn event(name: &str, fields: &[(&str, Value)]) {
    if !enabled() {
        return;
    }
    push_event(
        name,
        fields
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect(),
    );
}

/// RAII span: emits `span_begin` on creation and `span_end` (with
/// `elapsed_us`) on drop, and scopes nested events under its name.
///
/// Inert (no allocation, no clock read) when telemetry is disabled at
/// creation time.
#[must_use = "a span records its duration when dropped"]
pub struct Span {
    started: Option<Instant>,
}

impl Span {
    fn inert() -> Self {
        Span { started: None }
    }
}

/// Opens a span named `name`. See [`Span`].
pub fn span(name: &str) -> Span {
    if !enabled() {
        return Span::inert();
    }
    SPAN_STACK.with(|s| s.borrow_mut().push(name.to_string()));
    push_event("span_begin", Vec::new());
    Span {
        started: Some(Instant::now()),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(started) = self.started else {
            return;
        };
        push_event(
            "span_end",
            vec![(
                "elapsed_us".to_string(),
                Value::Int(started.elapsed().as_micros() as i64),
            )],
        );
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

// ---------------------------------------------------------------------------
// JSONL serialization
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "\"NaN\"".to_string()
    } else if v > 0.0 {
        "\"inf\"".to_string()
    } else {
        "\"-inf\"".to_string()
    }
}

impl Value {
    fn to_json(&self) -> String {
        match self {
            Value::Int(v) => format!("{v}"),
            Value::Float(v) => json_f64(*v),
            Value::Str(s) => format!("\"{}\"", json_escape(s)),
            Value::Bool(b) => format!("{b}"),
        }
    }
}

impl Event {
    /// Serializes the event as one JSON line (no trailing newline).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"seq\": {}, \"t_us\": {}, \"thread\": {}, \"span\": \"{}\", \"name\": \"{}\"",
            self.seq,
            self.t_us,
            self.thread,
            json_escape(&self.span),
            json_escape(&self.name),
        );
        if !self.fields.is_empty() {
            out.push_str(", \"fields\": {");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {}", json_escape(k), v.to_json()));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

// ---------------------------------------------------------------------------
// Dump machinery
// ---------------------------------------------------------------------------

static DUMP_OVERRIDE: Mutex<Option<PathBuf>> = Mutex::new(None);

fn env_dump_path() -> Option<&'static PathBuf> {
    static PATH: OnceLock<Option<PathBuf>> = OnceLock::new();
    PATH.get_or_init(|| {
        std::env::var("SPICIER_TRACE")
            .ok()
            .filter(|v| !v.is_empty())
            .map(PathBuf::from)
    })
    .as_ref()
}

/// Sets (or clears) the flight-recorder dump file programmatically,
/// overriding `SPICIER_TRACE`. Used by the experiment harness to point
/// dumps at the campaign output directory, and by tests.
pub fn set_dump_path(path: Option<PathBuf>) {
    *DUMP_OVERRIDE.lock().unwrap_or_else(|e| e.into_inner()) = path;
}

fn dump_path() -> Option<PathBuf> {
    let over = DUMP_OVERRIDE.lock().unwrap_or_else(|e| e.into_inner());
    over.clone().or_else(|| env_dump_path().cloned())
}

/// Records an analysis failure: emits a final `failure` event carrying
/// `kind` (e.g. `DcNoConvergence`) and `detail`, then appends the whole
/// ring-buffer trajectory to the dump file as JSONL and clears the
/// ring, so each dump holds the events since the previous one.
///
/// No-op when telemetry is disabled; without a dump path the failure
/// event is still recorded in the ring (visible to [`drain`]).
pub fn record_failure(kind: &str, detail: &str) {
    if !enabled() {
        return;
    }
    push_event(
        "failure",
        vec![
            ("kind".to_string(), Value::Str(kind.to_string())),
            ("detail".to_string(), Value::Str(detail.to_string())),
        ],
    );
    let Some(path) = dump_path() else {
        return;
    };
    let (events, dropped) = {
        let mut ring = ring_lock();
        let dropped = ring.dropped;
        ring.dropped = 0;
        (std::mem::take(&mut ring.events), dropped)
    };
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"name\": \"dump_begin\", \"kind\": \"{}\", \"events\": {}, \"dropped\": {}}}\n",
        json_escape(kind),
        events.len(),
        dropped,
    ));
    for ev in &events {
        out.push_str(&ev.to_jsonl());
        out.push('\n');
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    // Failure dumps append (several corners can fail in one campaign);
    // write errors are swallowed — telemetry must never fail the run.
    let _ = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(out.as_bytes()));
}

/// Returns a copy of the events currently buffered, oldest first.
#[must_use]
pub fn snapshot() -> Vec<Event> {
    ring_lock().events.iter().cloned().collect()
}

/// Removes and returns all buffered events, oldest first, and resets
/// the dropped-event counter.
pub fn drain() -> Vec<Event> {
    let mut ring = ring_lock();
    ring.dropped = 0;
    std::mem::take(&mut ring.events).into()
}

/// Sets the ring-buffer capacity (events beyond it evict oldest-first).
/// Intended for tests; the default is [`DEFAULT_CAPACITY`].
pub fn set_capacity(cap: usize) {
    let mut ring = ring_lock();
    ring.cap = cap.max(1);
    while ring.events.len() > ring.cap {
        ring.events.pop_front();
        ring.dropped += 1;
    }
}

// ---------------------------------------------------------------------------
// Per-analysis summaries and the process-global rollup
// ---------------------------------------------------------------------------

/// Merges two optional "worst" measurements, treating `NaN` as worse
/// than anything (mirrors `SolveQuality::worst`).
fn worst_opt(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(x), Some(y)) => {
            if x.is_nan() || y.is_nan() {
                Some(f64::NAN)
            } else {
                Some(x.max(y))
            }
        }
    }
}

/// Per-analysis telemetry rollup attached to `DcSolution`,
/// `TranResult`, `AcResult`, and `NoiseResult`.
///
/// Built from counters the analyses already track, so populating it is
/// cheap and unconditional; only the merge into the process-global
/// rollup is gated on [`enabled`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySummary {
    /// Wall-clock time spent in the analysis.
    pub wall: Duration,
    /// Total Newton iterations across all solves.
    pub newton_iterations: u64,
    /// Newton iterations spent per recovery-ladder rung label
    /// (`"newton"`, `"damped-newton"`, `"gmin-stepping"`, ...).
    pub rung_iterations: Vec<(String, u64)>,
    /// Accepted transient timesteps.
    pub accepted_steps: u64,
    /// Rejected transient timesteps (LTE or Newton rejections).
    pub rejected_steps: u64,
    /// Linear-kernel counters accumulated during the analysis.
    pub lu: LuStats,
    /// Worst certified backward error observed (`NaN` is pessimal).
    pub worst_backward_error: Option<f64>,
    /// Worst condition-number estimate observed, when one was computed
    /// (failure path, or `SPICIER_CONDEST=1` on slow-but-successful
    /// solves).
    pub cond_estimate: Option<f64>,
}

impl TelemetrySummary {
    /// Merges `other` into `self` (durations add, worsts worst-merge).
    pub fn absorb(&mut self, other: &TelemetrySummary) {
        self.wall += other.wall;
        self.newton_iterations += other.newton_iterations;
        for (label, n) in &other.rung_iterations {
            match self.rung_iterations.iter_mut().find(|(l, _)| l == label) {
                Some((_, total)) => *total += n,
                None => self.rung_iterations.push((label.clone(), *n)),
            }
        }
        self.accepted_steps += other.accepted_steps;
        self.rejected_steps += other.rejected_steps;
        self.lu.absorb(&other.lu);
        self.worst_backward_error =
            worst_opt(self.worst_backward_error, other.worst_backward_error);
        self.cond_estimate = worst_opt(self.cond_estimate, other.cond_estimate);
    }

    /// Folds many summaries into one under [`absorb`]'s discipline:
    /// durations and counters add, worsts worst-merge (`NaN` pessimal).
    /// An empty iterator yields the default (all-zero) summary. Used by
    /// the campaign daemon's drain report to roll every job this
    /// incarnation touched into a single line.
    ///
    /// [`absorb`]: TelemetrySummary::absorb
    #[must_use]
    pub fn merged<'a, I: IntoIterator<Item = &'a TelemetrySummary>>(items: I) -> TelemetrySummary {
        let mut total = TelemetrySummary::default();
        for item in items {
            total.absorb(item);
        }
        total
    }
}

/// Process-global telemetry rollup, drained per experiment by the
/// campaign driver via [`take_global_summary`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GlobalSummary {
    /// Number of analysis summaries merged in.
    pub analyses: u64,
    /// Total Newton iterations.
    pub newton_iterations: u64,
    /// Newton iterations per recovery-ladder rung label.
    pub rung_iterations: BTreeMap<String, u64>,
    /// Accepted transient timesteps.
    pub accepted_steps: u64,
    /// Rejected transient timesteps.
    pub rejected_steps: u64,
    /// Linear-kernel counters.
    pub lu: LuStats,
    /// Worst certified backward error observed.
    pub worst_backward_error: Option<f64>,
    /// Worst condition-number estimate observed, when computed.
    pub worst_cond_estimate: Option<f64>,
}

static GLOBAL: Mutex<Option<GlobalSummary>> = Mutex::new(None);

/// Merges an analysis summary into the process-global rollup. No-op
/// when telemetry is disabled (the rollup only feeds `RUN_REPORT.json`,
/// which is only written with telemetry on).
pub fn record_summary(summary: &TelemetrySummary) {
    if !enabled() {
        return;
    }
    let mut global = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let g = global.get_or_insert_with(GlobalSummary::default);
    g.analyses += 1;
    g.newton_iterations += summary.newton_iterations;
    for (label, n) in &summary.rung_iterations {
        *g.rung_iterations.entry(label.clone()).or_insert(0) += n;
    }
    g.accepted_steps += summary.accepted_steps;
    g.rejected_steps += summary.rejected_steps;
    g.lu.absorb(&summary.lu);
    g.worst_backward_error = worst_opt(g.worst_backward_error, summary.worst_backward_error);
    g.worst_cond_estimate = worst_opt(g.worst_cond_estimate, summary.cond_estimate);
}

/// Drains the process-global rollup, returning everything recorded
/// since the previous call (default-empty if nothing was recorded).
pub fn take_global_summary() -> GlobalSummary {
    GLOBAL
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The ring buffer is process-global and `cargo test` runs tests on
    // many threads: every test that inspects ring contents serializes
    // on this lock and filters for its own thread's events.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn own(events: Vec<Event>) -> Vec<Event> {
        let me = thread_id();
        events.into_iter().filter(|e| e.thread == me).collect()
    }

    #[test]
    fn merged_folds_summaries_with_worst_merge() {
        let a = TelemetrySummary {
            wall: Duration::from_millis(10),
            newton_iterations: 3,
            worst_backward_error: Some(1e-12),
            ..Default::default()
        };
        let b = TelemetrySummary {
            wall: Duration::from_millis(5),
            newton_iterations: 4,
            worst_backward_error: Some(1e-9),
            ..Default::default()
        };
        let total = TelemetrySummary::merged([&a, &b]);
        assert_eq!(total.wall, Duration::from_millis(15));
        assert_eq!(total.newton_iterations, 7);
        assert_eq!(total.worst_backward_error, Some(1e-9));
        assert_eq!(
            TelemetrySummary::merged(std::iter::empty()),
            TelemetrySummary::default()
        );
    }

    #[test]
    fn disabled_is_inert() {
        assert!(!enabled());
        event("ignored", &[("k", Value::Int(1))]);
        let _span = span("ignored");
        // Nothing above may have touched the ring for this thread.
        let mine = own(snapshot());
        assert!(mine.is_empty());
    }

    #[test]
    fn scoped_enable_nests_and_restores() {
        assert!(!enabled());
        with_trace(|| {
            assert!(enabled());
            with_trace(|| assert!(enabled()));
            assert!(enabled());
        });
        assert!(!enabled());
        let caught = std::panic::catch_unwind(|| with_trace(|| panic!("boom")));
        assert!(caught.is_err());
        assert!(!enabled());
    }

    #[test]
    fn events_record_and_wraparound_drops_oldest() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        with_trace(|| {
            drain();
            set_capacity(4);
            for i in 0..10_i64 {
                event("tick", &[("i", Value::Int(i))]);
            }
            let events = own(drain());
            set_capacity(DEFAULT_CAPACITY);
            assert_eq!(events.len(), 4);
            // Oldest evicted: the survivors are ticks 6..=9, in order.
            let is: Vec<i64> = events
                .iter()
                .map(|e| match e.fields[0].1 {
                    Value::Int(v) => v,
                    _ => panic!("unexpected field"),
                })
                .collect();
            assert_eq!(is, vec![6, 7, 8, 9]);
            // Sequence numbers are strictly increasing.
            assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        });
    }

    #[test]
    fn spans_nest_and_scope_events() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        with_trace(|| {
            drain();
            {
                let _outer = span("outer");
                event("a", &[]);
                {
                    let _inner = span("inner");
                    event("b", &[]);
                }
                event("c", &[]);
            }
            let events = own(drain());
            let find = |name: &str| {
                events
                    .iter()
                    .find(|e| e.name == name)
                    .unwrap_or_else(|| panic!("missing event {name}"))
            };
            assert_eq!(find("a").span, "outer");
            assert_eq!(find("b").span, "outer/inner");
            assert_eq!(find("c").span, "outer");
            // Both span_end events fired, inner first.
            let ends: Vec<&str> = events
                .iter()
                .filter(|e| e.name == "span_end")
                .map(|e| e.span.as_str())
                .collect();
            assert_eq!(ends, vec!["outer/inner", "outer"]);
        });
    }

    #[test]
    fn jsonl_escapes_names_and_nonfinite() {
        let ev = Event {
            seq: 7,
            t_us: 42,
            thread: 0,
            span: "dc/rung \"weird\\node\"".to_string(),
            name: "new\nline".to_string(),
            fields: vec![
                ("node".to_string(), Value::Str("n\"1\\2\t".to_string())),
                ("residual".to_string(), Value::Float(f64::NAN)),
                ("vmax".to_string(), Value::Float(f64::INFINITY)),
                ("iter".to_string(), Value::Int(-3)),
                ("ok".to_string(), Value::Bool(false)),
            ],
        };
        let line = ev.to_jsonl();
        assert!(line.contains("\"span\": \"dc/rung \\\"weird\\\\node\\\"\""));
        assert!(line.contains("\"name\": \"new\\u000aline\""));
        assert!(line.contains("\"node\": \"n\\\"1\\\\2\\u0009\""));
        assert!(line.contains("\"residual\": \"NaN\""));
        assert!(line.contains("\"vmax\": \"inf\""));
        assert!(line.contains("\"iter\": -3"));
        assert!(line.contains("\"ok\": false"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn record_failure_dumps_and_clears() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join(format!("spicier-telemetry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("dump.jsonl");
        with_trace(|| {
            drain();
            set_dump_path(Some(path.clone()));
            event("newton_iter", &[("iter", Value::Int(1))]);
            record_failure("DcNoConvergence", "rung pseudo-transient exhausted");
            record_failure("DeadlineExceeded", "corner 3");
            set_dump_path(None);
        });
        let text = std::fs::read_to_string(&path).expect("dump written");
        let _ = std::fs::remove_dir_all(&dir);
        let lines: Vec<&str> = text.lines().collect();
        // Two dumps: each begins with a dump_begin header and ends with
        // its failure event; the second dump only holds events recorded
        // after the first (ring cleared between).
        assert!(lines[0].contains("\"dump_begin\""));
        assert!(lines[0].contains("\"DcNoConvergence\""));
        assert!(text.contains("\"newton_iter\""));
        assert!(text.contains("rung pseudo-transient exhausted"));
        let second = text
            .split("\"dump_begin\"")
            .nth(2)
            .expect("second dump present");
        assert!(!second.contains("newton_iter"));
        assert!(lines
            .last()
            .expect("non-empty")
            .contains("DeadlineExceeded"));
    }

    #[test]
    fn summaries_merge_and_drain() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        with_trace(|| {
            take_global_summary();
            let mut a = TelemetrySummary {
                newton_iterations: 10,
                rung_iterations: vec![("newton".to_string(), 8), ("gmin".to_string(), 2)],
                worst_backward_error: Some(1e-12),
                ..TelemetrySummary::default()
            };
            let b = TelemetrySummary {
                newton_iterations: 5,
                rung_iterations: vec![("newton".to_string(), 5)],
                worst_backward_error: Some(1e-9),
                cond_estimate: Some(1e8),
                ..TelemetrySummary::default()
            };
            a.absorb(&b);
            assert_eq!(a.newton_iterations, 15);
            assert_eq!(
                a.rung_iterations,
                vec![("newton".to_string(), 13), ("gmin".to_string(), 2)]
            );
            assert_eq!(a.worst_backward_error, Some(1e-9));
            record_summary(&a);
            record_summary(&b);
            let g = take_global_summary();
            assert_eq!(g.analyses, 2);
            assert_eq!(g.newton_iterations, 20);
            assert_eq!(g.rung_iterations.get("newton"), Some(&18));
            assert_eq!(g.worst_cond_estimate, Some(1e8));
            // Drained: the next take is empty.
            assert_eq!(take_global_summary(), GlobalSummary::default());
        });
    }

    #[test]
    fn nan_is_pessimal_in_worst_merge() {
        assert!(worst_opt(Some(1.0), Some(f64::NAN)).unwrap().is_nan());
        assert!(worst_opt(Some(f64::NAN), Some(2.0)).unwrap().is_nan());
        assert_eq!(worst_opt(None, Some(3.0)), Some(3.0));
        assert_eq!(worst_opt(Some(4.0), Some(2.0)), Some(4.0));
        assert_eq!(worst_opt(None, None), None);
    }
}
