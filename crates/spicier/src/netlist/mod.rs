//! Netlist construction and the compiled [`Circuit`].
//!
//! A [`Netlist`] is a mutable bag of named nodes and named elements; calling
//! [`Netlist::compile`] validates it and produces an immutable [`Circuit`]
//! with MNA bookkeeping (branch-current indices, unknown count) ready for
//! analysis. Fault injection (the `faults` crate) edits a netlist *before*
//! compilation through [`Netlist::rewire_terminal`] and friends, exactly as
//! the paper edits its SPICE decks to plant defects.

mod element;
mod source;

pub use element::{Element, Terminal};
pub use source::SourceWave;

use crate::devices::{BjtModel, DiodeModel};
use crate::error::Error;
use std::collections::HashMap;

/// Identifier of a circuit node. Node 0 is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Whether this is the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }

    /// Index of this node's voltage unknown, or `None` for ground.
    pub(crate) fn unknown(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0 - 1)
        }
    }
}

/// A mutable netlist under construction.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    node_names: Vec<String>,
    node_by_name: HashMap<String, NodeId>,
    elements: Vec<(String, Element)>,
    element_by_name: HashMap<String, usize>,
    auto_counter: usize,
}

impl Netlist {
    /// The ground node (node `0`, always present).
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty netlist containing only ground.
    pub fn new() -> Self {
        let mut nl = Self {
            node_names: vec!["0".to_string()],
            ..Self::default()
        };
        nl.node_by_name.insert("0".to_string(), Self::GROUND);
        nl
    }

    /// Returns the node named `name`, creating it if necessary. The name
    /// `"0"` always refers to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.node_by_name.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_string());
        self.node_by_name.insert(name.to_string(), id);
        id
    }

    /// Creates a fresh node with a unique generated name starting with
    /// `prefix`.
    pub fn fresh_node(&mut self, prefix: &str) -> NodeId {
        loop {
            self.auto_counter += 1;
            let name = format!("{prefix}#{}", self.auto_counter);
            if !self.node_by_name.contains_key(&name) {
                return self.node(&name);
            }
        }
    }

    /// Looks up an existing node by name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] when no node has that name.
    pub fn find_node(&self, name: &str) -> Result<NodeId, Error> {
        self.node_by_name
            .get(name)
            .copied()
            .ok_or_else(|| Error::UnknownNode(name.to_string()))
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this netlist.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Iterates over `(name, element)` pairs in insertion order.
    pub fn elements(&self) -> impl Iterator<Item = (&str, &Element)> {
        self.elements.iter().map(|(n, e)| (n.as_str(), e))
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    fn insert(&mut self, name: &str, element: Element) -> Result<(), Error> {
        if self.element_by_name.contains_key(name) {
            return Err(Error::DuplicateElement(name.to_string()));
        }
        self.element_by_name
            .insert(name.to_string(), self.elements.len());
        self.elements.push((name.to_string(), element));
        Ok(())
    }

    fn check_positive(&self, name: &str, value: f64, what: &str) -> Result<(), Error> {
        if !(value.is_finite() && value > 0.0) {
            return Err(Error::InvalidValue {
                element: name.to_string(),
                reason: format!("{what} must be positive and finite, got {value}"),
            });
        }
        Ok(())
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Fails on duplicate name or non-positive resistance.
    pub fn resistor(&mut self, name: &str, p: NodeId, n: NodeId, ohms: f64) -> Result<(), Error> {
        self.check_positive(name, ohms, "resistance")?;
        self.insert(name, Element::Resistor { p, n, value: ohms })
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Fails on duplicate name or non-positive capacitance.
    pub fn capacitor(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        farads: f64,
    ) -> Result<(), Error> {
        self.check_positive(name, farads, "capacitance")?;
        self.insert(
            name,
            Element::Capacitor {
                p,
                n,
                value: farads,
            },
        )
    }

    /// Adds an inductor.
    ///
    /// # Errors
    ///
    /// Fails on duplicate name or non-positive inductance.
    pub fn inductor(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        henries: f64,
    ) -> Result<(), Error> {
        self.check_positive(name, henries, "inductance")?;
        self.insert(
            name,
            Element::Inductor {
                p,
                n,
                value: henries,
            },
        )
    }

    /// Adds a voltage source with an arbitrary waveform.
    ///
    /// # Errors
    ///
    /// Fails on duplicate name.
    pub fn vsource(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        wave: SourceWave,
    ) -> Result<(), Error> {
        self.insert(name, Element::VoltageSource { p, n, wave })
    }

    /// Adds a DC voltage source.
    ///
    /// # Errors
    ///
    /// Fails on duplicate name.
    pub fn vdc(&mut self, name: &str, p: NodeId, n: NodeId, volts: f64) -> Result<(), Error> {
        self.vsource(name, p, n, SourceWave::Dc(volts))
    }

    /// Adds a current source with an arbitrary waveform (current flows from
    /// `p` through the source to `n`).
    ///
    /// # Errors
    ///
    /// Fails on duplicate name.
    pub fn isource(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        wave: SourceWave,
    ) -> Result<(), Error> {
        self.insert(name, Element::CurrentSource { p, n, wave })
    }

    /// Adds a DC current source.
    ///
    /// # Errors
    ///
    /// Fails on duplicate name.
    pub fn idc(&mut self, name: &str, p: NodeId, n: NodeId, amps: f64) -> Result<(), Error> {
        self.isource(name, p, n, SourceWave::Dc(amps))
    }

    /// Adds a junction diode.
    ///
    /// # Errors
    ///
    /// Fails on duplicate name.
    pub fn diode(
        &mut self,
        name: &str,
        anode: NodeId,
        cathode: NodeId,
        model: DiodeModel,
    ) -> Result<(), Error> {
        self.insert(
            name,
            Element::Diode {
                anode,
                cathode,
                model,
            },
        )
    }

    /// Adds a voltage-controlled voltage source
    /// (`v(p) − v(n) = gain · (v(cp) − v(cn))`).
    ///
    /// # Errors
    ///
    /// Fails on duplicate name or a non-finite gain.
    pub fn vcvs(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gain: f64,
    ) -> Result<(), Error> {
        if !gain.is_finite() {
            return Err(Error::InvalidValue {
                element: name.to_string(),
                reason: format!("gain must be finite, got {gain}"),
            });
        }
        self.insert(name, Element::Vcvs { p, n, cp, cn, gain })
    }

    /// Adds a voltage-controlled current source (a current
    /// `gm · (v(cp) − v(cn))` flows from `p` through the source to `n`).
    ///
    /// # Errors
    ///
    /// Fails on duplicate name or a non-finite transconductance.
    pub fn vccs(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gm: f64,
    ) -> Result<(), Error> {
        if !gm.is_finite() {
            return Err(Error::InvalidValue {
                element: name.to_string(),
                reason: format!("transconductance must be finite, got {gm}"),
            });
        }
        self.insert(name, Element::Vccs { p, n, cp, cn, gm })
    }

    /// Adds a bipolar transistor.
    ///
    /// # Errors
    ///
    /// Fails on duplicate name.
    pub fn bjt(
        &mut self,
        name: &str,
        collector: NodeId,
        base: NodeId,
        emitter: NodeId,
        model: BjtModel,
    ) -> Result<(), Error> {
        self.insert(
            name,
            Element::Bjt {
                collector,
                base,
                emitter,
                model,
            },
        )
    }

    /// Looks up an element by name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownElement`] when absent.
    pub fn element(&self, name: &str) -> Result<&Element, Error> {
        self.element_by_name
            .get(name)
            .map(|&i| &self.elements[i].1)
            .ok_or_else(|| Error::UnknownElement(name.to_string()))
    }

    /// The node wired to `terminal` of element `name`.
    ///
    /// # Errors
    ///
    /// Fails when the element is unknown or lacks the terminal.
    pub fn terminal_node(&self, name: &str, terminal: Terminal) -> Result<NodeId, Error> {
        self.element(name)?
            .terminal(terminal)
            .ok_or_else(|| Error::InvalidTerminal {
                element: name.to_string(),
                terminal: terminal.name(),
            })
    }

    /// Rewires `terminal` of element `name` to `node`, returning the node
    /// it was previously wired to. This is the primitive used to inject
    /// *open* defects (split a node, reconnect through a high impedance).
    ///
    /// # Errors
    ///
    /// Fails when the element is unknown or lacks the terminal.
    pub fn rewire_terminal(
        &mut self,
        name: &str,
        terminal: Terminal,
        node: NodeId,
    ) -> Result<NodeId, Error> {
        let idx = *self
            .element_by_name
            .get(name)
            .ok_or_else(|| Error::UnknownElement(name.to_string()))?;
        self.elements[idx]
            .1
            .rewire(terminal, node)
            .ok_or_else(|| Error::InvalidTerminal {
                element: name.to_string(),
                terminal: terminal.name(),
            })
    }

    /// Replaces the value of resistor `name` (used for *resistor short /
    /// drift* defects).
    ///
    /// # Errors
    ///
    /// Fails when the element is unknown, not a resistor, or the value is
    /// invalid.
    pub fn set_resistance(&mut self, name: &str, ohms: f64) -> Result<(), Error> {
        self.check_positive(name, ohms, "resistance")?;
        let idx = *self
            .element_by_name
            .get(name)
            .ok_or_else(|| Error::UnknownElement(name.to_string()))?;
        match &mut self.elements[idx].1 {
            Element::Resistor { value, .. } => {
                *value = ohms;
                Ok(())
            }
            other => Err(Error::InvalidValue {
                element: name.to_string(),
                reason: format!("expected a resistor, found {}", other.type_tag()),
            }),
        }
    }

    /// Removes element `name` from the netlist (used for hard opens on
    /// two-terminal elements).
    ///
    /// # Errors
    ///
    /// Fails when the element is unknown.
    pub fn remove_element(&mut self, name: &str) -> Result<Element, Error> {
        let idx = self
            .element_by_name
            .remove(name)
            .ok_or_else(|| Error::UnknownElement(name.to_string()))?;
        let (_, element) = self.elements.remove(idx);
        // Reindex the map entries that shifted down.
        for (_, slot) in self.element_by_name.iter_mut() {
            if *slot > idx {
                *slot -= 1;
            }
        }
        Ok(element)
    }

    /// Validates the netlist and produces an immutable [`Circuit`].
    ///
    /// # Errors
    ///
    /// Fails when a non-ground node is not touched by any element terminal
    /// (a dangling wire, which would make the MNA matrix singular).
    pub fn compile(self) -> Result<Circuit, Error> {
        let mut touch = vec![0usize; self.node_names.len()];
        for (_, e) in &self.elements {
            for node in e.nodes() {
                touch[node.0] += 1;
            }
        }
        for (idx, &count) in touch.iter().enumerate().skip(1) {
            if count == 0 {
                return Err(Error::UnknownNode(format!(
                    "node `{}` is not connected to any element",
                    self.node_names[idx]
                )));
            }
        }
        // Assign branch-current unknowns.
        let n_nodes = self.node_names.len() - 1;
        let mut branches = Vec::new();
        for (idx, (_, e)) in self.elements.iter().enumerate() {
            if e.has_branch_current() {
                branches.push(idx);
            }
        }
        let dim = n_nodes + branches.len();
        Ok(Circuit {
            netlist: self,
            branch_of_element: branches,
            dim,
        })
    }
}

/// An immutable, validated circuit ready for analysis.
#[derive(Debug, Clone)]
pub struct Circuit {
    netlist: Netlist,
    /// Element indices that own a branch current, in branch order.
    branch_of_element: Vec<usize>,
    dim: usize,
}

impl Circuit {
    /// Number of MNA unknowns (node voltages + branch currents).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of non-ground nodes.
    pub fn node_unknowns(&self) -> usize {
        self.netlist.node_count() - 1
    }

    /// Number of branch-current unknowns.
    pub fn branch_unknowns(&self) -> usize {
        self.branch_of_element.len()
    }

    /// Iterates over `(name, element)` pairs.
    pub fn elements(&self) -> impl Iterator<Item = (&str, &Element)> {
        self.netlist.elements()
    }

    /// Elements as a slice of `(name, element)` pairs (internal).
    pub(crate) fn element_slice(&self) -> &[(String, Element)] {
        &self.netlist.elements
    }

    /// Branch order: element indices owning branch currents.
    pub(crate) fn branch_elements(&self) -> &[usize] {
        &self.branch_of_element
    }

    /// Looks up a node by name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] when no node has that name.
    pub fn find_node(&self, name: &str) -> Result<NodeId, Error> {
        self.netlist.find_node(name)
    }

    /// Name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        self.netlist.node_name(id)
    }

    /// All node ids including ground.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.netlist.node_count()).map(NodeId)
    }

    /// Recovers the mutable netlist (e.g. to inject another fault).
    pub fn into_netlist(self) -> Netlist {
        self.netlist
    }

    /// The underlying netlist, read-only.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_is_premade() {
        let mut nl = Netlist::new();
        assert_eq!(nl.node("0"), Netlist::GROUND);
        assert!(Netlist::GROUND.is_ground());
        assert_eq!(nl.node_count(), 1);
    }

    #[test]
    fn nodes_are_interned() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let a2 = nl.node("a");
        assert_eq!(a, a2);
        assert_ne!(a, Netlist::GROUND);
        assert_eq!(nl.node_name(a), "a");
    }

    #[test]
    fn fresh_nodes_are_unique() {
        let mut nl = Netlist::new();
        let x = nl.fresh_node("split");
        let y = nl.fresh_node("split");
        assert_ne!(x, y);
    }

    #[test]
    fn duplicate_element_rejected() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R1", a, Netlist::GROUND, 1.0).unwrap();
        let err = nl.resistor("R1", a, Netlist::GROUND, 2.0).unwrap_err();
        assert!(matches!(err, Error::DuplicateElement(_)));
    }

    #[test]
    fn invalid_values_rejected() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        assert!(nl.resistor("R1", a, Netlist::GROUND, -5.0).is_err());
        assert!(nl.capacitor("C1", a, Netlist::GROUND, 0.0).is_err());
        assert!(nl.inductor("L1", a, Netlist::GROUND, f64::NAN).is_err());
    }

    #[test]
    fn rewire_and_terminal_lookup() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.resistor("R1", a, Netlist::GROUND, 1.0).unwrap();
        assert_eq!(nl.terminal_node("R1", Terminal::Pos).unwrap(), a);
        let old = nl.rewire_terminal("R1", Terminal::Pos, b).unwrap();
        assert_eq!(old, a);
        assert_eq!(nl.terminal_node("R1", Terminal::Pos).unwrap(), b);
        assert!(nl.terminal_node("R1", Terminal::Base).is_err());
        assert!(nl.terminal_node("Rx", Terminal::Pos).is_err());
    }

    #[test]
    fn set_resistance_only_on_resistors() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R1", a, Netlist::GROUND, 1.0).unwrap();
        nl.capacitor("C1", a, Netlist::GROUND, 1e-12).unwrap();
        nl.set_resistance("R1", 42.0).unwrap();
        match nl.element("R1").unwrap() {
            Element::Resistor { value, .. } => assert_eq!(*value, 42.0),
            _ => panic!("not a resistor"),
        }
        assert!(nl.set_resistance("C1", 42.0).is_err());
    }

    #[test]
    fn remove_element_reindexes() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R1", a, Netlist::GROUND, 1.0).unwrap();
        nl.resistor("R2", a, Netlist::GROUND, 2.0).unwrap();
        nl.remove_element("R1").unwrap();
        assert!(nl.element("R1").is_err());
        match nl.element("R2").unwrap() {
            Element::Resistor { value, .. } => assert_eq!(*value, 2.0),
            _ => panic!("not a resistor"),
        }
        assert_eq!(nl.element_count(), 1);
    }

    #[test]
    fn compile_rejects_dangling_node() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let _dangling = nl.node("nowhere");
        nl.resistor("R1", a, Netlist::GROUND, 1.0).unwrap();
        assert!(nl.compile().is_err());
    }

    #[test]
    fn compile_assigns_branches() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vdc("V1", a, Netlist::GROUND, 1.0).unwrap();
        nl.inductor("L1", a, b, 1e-9).unwrap();
        nl.resistor("R1", b, Netlist::GROUND, 1.0).unwrap();
        let c = nl.compile().unwrap();
        assert_eq!(c.node_unknowns(), 2);
        assert_eq!(c.branch_unknowns(), 2);
        assert_eq!(c.dim(), 4);
    }

    #[test]
    fn circuit_round_trips_to_netlist() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vdc("V1", a, Netlist::GROUND, 1.0).unwrap();
        nl.resistor("R1", a, Netlist::GROUND, 1.0).unwrap();
        let c = nl.compile().unwrap();
        let nl2 = c.into_netlist();
        assert_eq!(nl2.element_count(), 2);
    }
}
