//! Circuit element definitions.

use super::{NodeId, SourceWave};
use crate::devices::{BjtModel, DiodeModel};

/// A terminal of an element, used for rewiring during fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Terminal {
    /// Positive terminal of a two-terminal element.
    Pos,
    /// Negative terminal of a two-terminal element.
    Neg,
    /// Positive control input of a controlled source.
    CtrlPos,
    /// Negative control input of a controlled source.
    CtrlNeg,
    /// Diode anode.
    Anode,
    /// Diode cathode.
    Cathode,
    /// BJT collector.
    Collector,
    /// BJT base.
    Base,
    /// BJT emitter.
    Emitter,
}

impl Terminal {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Terminal::Pos => "pos",
            Terminal::Neg => "neg",
            Terminal::CtrlPos => "ctrl_pos",
            Terminal::CtrlNeg => "ctrl_neg",
            Terminal::Anode => "anode",
            Terminal::Cathode => "cathode",
            Terminal::Collector => "collector",
            Terminal::Base => "base",
            Terminal::Emitter => "emitter",
        }
    }
}

/// One element of a netlist.
///
/// Two-terminal elements use the SPICE convention: positive current flows
/// from the `p` terminal through the element to the `n` terminal.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// Linear resistor (`value` in ohms).
    Resistor {
        /// Positive node.
        p: NodeId,
        /// Negative node.
        n: NodeId,
        /// Resistance, ohms.
        value: f64,
    },
    /// Linear capacitor (`value` in farads).
    Capacitor {
        /// Positive node.
        p: NodeId,
        /// Negative node.
        n: NodeId,
        /// Capacitance, farads.
        value: f64,
    },
    /// Linear inductor (`value` in henries); carries a branch current
    /// unknown.
    Inductor {
        /// Positive node.
        p: NodeId,
        /// Negative node.
        n: NodeId,
        /// Inductance, henries.
        value: f64,
    },
    /// Independent voltage source; carries a branch current unknown.
    VoltageSource {
        /// Positive node.
        p: NodeId,
        /// Negative node.
        n: NodeId,
        /// Waveform.
        wave: SourceWave,
    },
    /// Independent current source (current flows from `p` through the
    /// source to `n`).
    CurrentSource {
        /// Positive node.
        p: NodeId,
        /// Negative node.
        n: NodeId,
        /// Waveform.
        wave: SourceWave,
    },
    /// Junction diode.
    Diode {
        /// Anode.
        anode: NodeId,
        /// Cathode.
        cathode: NodeId,
        /// Model parameters.
        model: DiodeModel,
    },
    /// Bipolar transistor.
    Bjt {
        /// Collector.
        collector: NodeId,
        /// Base.
        base: NodeId,
        /// Emitter.
        emitter: NodeId,
        /// Model parameters.
        model: BjtModel,
    },
    /// Voltage-controlled voltage source (SPICE `E`):
    /// `v(p) − v(n) = gain · (v(cp) − v(cn))`. Carries a branch current.
    Vcvs {
        /// Positive output node.
        p: NodeId,
        /// Negative output node.
        n: NodeId,
        /// Positive control node.
        cp: NodeId,
        /// Negative control node.
        cn: NodeId,
        /// Voltage gain.
        gain: f64,
    },
    /// Voltage-controlled current source (SPICE `G`): a current
    /// `gm · (v(cp) − v(cn))` flows from `p` through the source to `n`.
    Vccs {
        /// Positive output node.
        p: NodeId,
        /// Negative output node.
        n: NodeId,
        /// Positive control node.
        cp: NodeId,
        /// Negative control node.
        cn: NodeId,
        /// Transconductance, siemens.
        gm: f64,
    },
}

impl Element {
    /// The node currently wired to `terminal`, if the element has it.
    pub fn terminal(&self, terminal: Terminal) -> Option<NodeId> {
        use Element::*;
        use Terminal::*;
        match (self, terminal) {
            (
                Resistor { p, .. }
                | Capacitor { p, .. }
                | Inductor { p, .. }
                | VoltageSource { p, .. }
                | CurrentSource { p, .. }
                | Vcvs { p, .. }
                | Vccs { p, .. },
                Pos,
            ) => Some(*p),
            (
                Resistor { n, .. }
                | Capacitor { n, .. }
                | Inductor { n, .. }
                | VoltageSource { n, .. }
                | CurrentSource { n, .. }
                | Vcvs { n, .. }
                | Vccs { n, .. },
                Neg,
            ) => Some(*n),
            (Vcvs { cp, .. } | Vccs { cp, .. }, CtrlPos) => Some(*cp),
            (Vcvs { cn, .. } | Vccs { cn, .. }, CtrlNeg) => Some(*cn),
            (Diode { anode, .. }, Anode | Pos) => Some(*anode),
            (Diode { cathode, .. }, Cathode | Neg) => Some(*cathode),
            (Bjt { collector, .. }, Collector) => Some(*collector),
            (Bjt { base, .. }, Base) => Some(*base),
            (Bjt { emitter, .. }, Emitter) => Some(*emitter),
            _ => None,
        }
    }

    /// Rewires `terminal` to `node`, returning the node it was previously
    /// wired to, or `None` when the element lacks that terminal.
    pub fn rewire(&mut self, terminal: Terminal, node: NodeId) -> Option<NodeId> {
        use Element::*;
        use Terminal::*;
        let slot: &mut NodeId = match (self, terminal) {
            (
                Resistor { p, .. }
                | Capacitor { p, .. }
                | Inductor { p, .. }
                | VoltageSource { p, .. }
                | CurrentSource { p, .. }
                | Vcvs { p, .. }
                | Vccs { p, .. },
                Pos,
            ) => p,
            (
                Resistor { n, .. }
                | Capacitor { n, .. }
                | Inductor { n, .. }
                | VoltageSource { n, .. }
                | CurrentSource { n, .. }
                | Vcvs { n, .. }
                | Vccs { n, .. },
                Neg,
            ) => n,
            (Vcvs { cp, .. } | Vccs { cp, .. }, CtrlPos) => cp,
            (Vcvs { cn, .. } | Vccs { cn, .. }, CtrlNeg) => cn,
            (Diode { anode, .. }, Anode | Pos) => anode,
            (Diode { cathode, .. }, Cathode | Neg) => cathode,
            (Bjt { collector, .. }, Collector) => collector,
            (Bjt { base, .. }, Base) => base,
            (Bjt { emitter, .. }, Emitter) => emitter,
            _ => return None,
        };
        Some(std::mem::replace(slot, node))
    }

    /// All nodes this element touches.
    pub fn nodes(&self) -> Vec<NodeId> {
        use Element::*;
        match self {
            Resistor { p, n, .. }
            | Capacitor { p, n, .. }
            | Inductor { p, n, .. }
            | VoltageSource { p, n, .. }
            | CurrentSource { p, n, .. } => vec![*p, *n],
            Diode { anode, cathode, .. } => vec![*anode, *cathode],
            Bjt {
                collector,
                base,
                emitter,
                ..
            } => vec![*collector, *base, *emitter],
            Vcvs { p, n, cp, cn, .. } | Vccs { p, n, cp, cn, .. } => {
                vec![*p, *n, *cp, *cn]
            }
        }
    }

    /// Whether this element introduces a branch-current unknown in MNA.
    pub fn has_branch_current(&self) -> bool {
        matches!(
            self,
            Element::VoltageSource { .. } | Element::Inductor { .. } | Element::Vcvs { .. }
        )
    }

    /// Short type tag used in diagnostics (`"R"`, `"C"`, `"Q"`, ...).
    pub fn type_tag(&self) -> &'static str {
        match self {
            Element::Resistor { .. } => "R",
            Element::Capacitor { .. } => "C",
            Element::Inductor { .. } => "L",
            Element::VoltageSource { .. } => "V",
            Element::CurrentSource { .. } => "I",
            Element::Diode { .. } => "D",
            Element::Bjt { .. } => "Q",
            Element::Vcvs { .. } => "E",
            Element::Vccs { .. } => "G",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    #[test]
    fn terminal_access_and_rewire() {
        let a = NodeId(1);
        let b = NodeId(2);
        let c = NodeId(3);
        let mut r = Element::Resistor {
            p: a,
            n: b,
            value: 1.0,
        };
        assert_eq!(r.terminal(Terminal::Pos), Some(a));
        assert_eq!(r.terminal(Terminal::Base), None);
        assert_eq!(r.rewire(Terminal::Pos, c), Some(a));
        assert_eq!(r.terminal(Terminal::Pos), Some(c));
        assert_eq!(r.rewire(Terminal::Collector, c), None);
    }

    #[test]
    fn bjt_terminals() {
        let q = Element::Bjt {
            collector: NodeId(1),
            base: NodeId(2),
            emitter: NodeId(3),
            model: crate::devices::BjtModel::fast_npn(),
        };
        assert_eq!(q.terminal(Terminal::Collector), Some(NodeId(1)));
        assert_eq!(q.terminal(Terminal::Base), Some(NodeId(2)));
        assert_eq!(q.terminal(Terminal::Emitter), Some(NodeId(3)));
        assert_eq!(q.nodes().len(), 3);
        assert_eq!(q.type_tag(), "Q");
        assert!(!q.has_branch_current());
    }

    #[test]
    fn diode_accepts_pos_neg_aliases() {
        let d = Element::Diode {
            anode: NodeId(1),
            cathode: Netlist::GROUND,
            model: crate::devices::DiodeModel::new(),
        };
        assert_eq!(d.terminal(Terminal::Pos), Some(NodeId(1)));
        assert_eq!(d.terminal(Terminal::Neg), Some(Netlist::GROUND));
    }

    #[test]
    fn branch_current_elements() {
        let v = Element::VoltageSource {
            p: NodeId(1),
            n: Netlist::GROUND,
            wave: SourceWave::Dc(1.0),
        };
        assert!(v.has_branch_current());
        let i = Element::CurrentSource {
            p: NodeId(1),
            n: Netlist::GROUND,
            wave: SourceWave::Dc(1.0),
        };
        assert!(!i.has_branch_current());
    }
}
