//! Time-dependent waveforms for independent sources.

/// Waveform of an independent voltage or current source.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceWave {
    /// Constant value.
    Dc(f64),
    /// SPICE `PULSE(v1 v2 delay rise fall width period)`.
    Pulse {
        /// Initial value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Delay before the first edge, seconds.
        delay: f64,
        /// Rise time, seconds.
        rise: f64,
        /// Fall time, seconds.
        fall: f64,
        /// Pulse width (time at `v2`), seconds.
        width: f64,
        /// Repetition period, seconds.
        period: f64,
    },
    /// SPICE `SIN(offset amplitude freq delay)`.
    Sin {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        amplitude: f64,
        /// Frequency, hertz.
        freq: f64,
        /// Delay before oscillation starts, seconds.
        delay: f64,
    },
    /// Piecewise-linear `(time, value)` points, sorted by time.
    Pwl(Vec<(f64, f64)>),
}

impl SourceWave {
    /// Builds a symmetric square-ish pulse train that toggles at `freq`
    /// between `v1` and `v2`, with edges taking `edge_frac` of the half
    /// period (a convenient driver for CML gate chains).
    pub fn square(v1: f64, v2: f64, freq: f64, edge_frac: f64) -> Self {
        let period = 1.0 / freq;
        let edge = edge_frac * period / 2.0;
        SourceWave::Pulse {
            v1,
            v2,
            delay: 0.0,
            rise: edge,
            fall: edge,
            width: period / 2.0 - edge,
            period,
        }
    }

    /// Source value at time `t` (clamped to the DC value for `t < 0`).
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            SourceWave::Dc(v) => *v,
            SourceWave::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v1;
                }
                let tau = (t - delay) % period;
                if tau < *rise {
                    if *rise == 0.0 {
                        *v2
                    } else {
                        v1 + (v2 - v1) * tau / rise
                    }
                } else if tau < rise + width {
                    *v2
                } else if tau < rise + width + fall {
                    if *fall == 0.0 {
                        *v1
                    } else {
                        v2 + (v1 - v2) * (tau - rise - width) / fall
                    }
                } else {
                    *v1
                }
            }
            SourceWave::Sin {
                offset,
                amplitude,
                freq,
                delay,
            } => {
                if t < *delay {
                    *offset
                } else {
                    offset + amplitude * (2.0 * std::f64::consts::PI * freq * (t - delay)).sin()
                }
            }
            SourceWave::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points.last().map(|&(_, v)| v).unwrap_or(0.0)
            }
        }
    }

    /// Value used for the DC operating point (the value at `t = 0`).
    pub fn dc_value(&self) -> f64 {
        self.value_at(0.0)
    }

    /// Appends slope-discontinuity times in `(0, t_stop]` to `out` so the
    /// transient engine can land on them exactly.
    pub fn breakpoints(&self, t_stop: f64, out: &mut Vec<f64>) {
        match self {
            SourceWave::Dc(_) => {}
            SourceWave::Pulse {
                delay,
                rise,
                fall,
                width,
                period,
                ..
            } => {
                let mut start = *delay;
                while start < t_stop {
                    for offset in [0.0, *rise, rise + width, rise + width + fall] {
                        let t = start + offset;
                        if t > 0.0 && t <= t_stop {
                            out.push(t);
                        }
                    }
                    start += period;
                    if *period <= 0.0 {
                        break;
                    }
                }
            }
            SourceWave::Sin { delay, .. } => {
                if *delay > 0.0 && *delay <= t_stop {
                    out.push(*delay);
                }
            }
            SourceWave::Pwl(points) => {
                for &(t, _) in points {
                    if t > 0.0 && t <= t_stop {
                        out.push(t);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_flat() {
        let w = SourceWave::Dc(3.3);
        assert_eq!(w.value_at(0.0), 3.3);
        assert_eq!(w.value_at(1.0), 3.3);
        assert_eq!(w.dc_value(), 3.3);
        let mut bp = Vec::new();
        w.breakpoints(1.0, &mut bp);
        assert!(bp.is_empty());
    }

    #[test]
    fn pulse_shape() {
        let w = SourceWave::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 1.0,
            rise: 0.5,
            fall: 0.5,
            width: 1.0,
            period: 4.0,
        };
        assert_eq!(w.value_at(0.0), 0.0);
        assert_eq!(w.value_at(1.25), 0.5); // mid-rise
        assert_eq!(w.value_at(2.0), 1.0); // plateau
        assert_eq!(w.value_at(2.75), 0.5); // mid-fall
        assert_eq!(w.value_at(3.5), 0.0); // back to v1
        assert_eq!(w.value_at(5.25), 0.5); // periodic repeat
    }

    #[test]
    fn square_toggles_at_frequency() {
        let f = 100.0e6;
        let w = SourceWave::square(3.05, 3.3, f, 0.1);
        let period = 1.0 / f;
        assert_eq!(w.value_at(0.3 * period), 3.3);
        assert_eq!(w.value_at(0.8 * period), 3.05);
        assert_eq!(w.value_at(1.3 * period), 3.3);
    }

    #[test]
    fn pulse_breakpoints_cover_edges() {
        let w = SourceWave::square(0.0, 1.0, 1.0e8, 0.1);
        let mut bp = Vec::new();
        w.breakpoints(2.0e-8, &mut bp);
        // Two periods, four corners each (t=0 corner excluded).
        assert!(bp.len() >= 7, "breakpoints: {bp:?}");
        assert!(bp.iter().all(|&t| t > 0.0 && t <= 2.0e-8));
    }

    #[test]
    fn sin_value() {
        let w = SourceWave::Sin {
            offset: 1.0,
            amplitude: 2.0,
            freq: 1.0,
            delay: 0.0,
        };
        assert!((w.value_at(0.25) - 3.0).abs() < 1e-12);
        assert!((w.value_at(0.75) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = SourceWave::Pwl(vec![(0.0, 0.0), (1.0, 2.0), (3.0, 2.0)]);
        assert_eq!(w.value_at(-1.0), 0.0);
        assert_eq!(w.value_at(0.5), 1.0);
        assert_eq!(w.value_at(2.0), 2.0);
        assert_eq!(w.value_at(9.0), 2.0);
        let mut bp = Vec::new();
        w.breakpoints(10.0, &mut bp);
        assert_eq!(bp, vec![1.0, 3.0]);
    }

    #[test]
    fn zero_rise_pulse_does_not_divide_by_zero() {
        let w = SourceWave::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 0.0,
            fall: 0.0,
            width: 0.5,
            period: 1.0,
        };
        assert_eq!(w.value_at(0.0), 1.0);
        assert_eq!(w.value_at(0.25), 1.0);
        assert_eq!(w.value_at(0.75), 0.0);
    }
}
