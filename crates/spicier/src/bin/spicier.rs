//! Command-line SPICE deck runner.
//!
//! ```console
//! $ spicier deck.cir            # run every analysis card, report to stdout
//! ```

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: spicier <deck.cir>");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match spicier::runner::run_deck(&text) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
