//! Circuit analyses: MNA assembly, DC operating point, transient, sweeps.

pub mod ac;
pub mod budget;
pub mod dc;
pub mod mna;
pub mod noise;
pub mod power;
pub mod preflight;
pub mod sweep;
pub mod tran;

pub use ac::{ac_analysis, decade_freqs, AcOptions, AcResult};
pub use budget::{with_corner_token, CancelHandle, CancelToken, Phase, RunBudget};
pub use dc::{
    operating_point, sweep_vsource, ConvergenceReport, DcOptions, DcSolution, RecoveryRung,
    RungAttempt,
};
pub use mna::{Assembler, EvalMode, Integration, Method, SolveWorkspace};
pub use noise::{noise_analysis, NoiseOptions, NoiseResult};
pub use power::{power_report, PowerReport};
pub use preflight::{assert_preflight, preflight, PreflightFinding, PreflightReport};
pub use sweep::{
    grid2, grid3, linspace, par_map, par_map_with, par_try_map, par_try_map_with, CornerFailure,
    SweepFailure, SweepReport, TryMapOptions,
};
pub use tran::{
    transient, transient_salvage, transient_salvage_with, transient_with, Probe, TranFailure,
    TranOptions, TranResult,
};
