//! Adaptive transient analysis.
//!
//! The engine steps with the trapezoidal rule (switching to one
//! backward-Euler step right after each source breakpoint to suppress trap
//! ringing), controls the step size with a voltage-change criterion
//! (`dv_max` per step) plus Newton-failure backoff, and lands exactly on
//! the slope discontinuities of all sources.
//!
//! **Salvage:** when Newton fails mid-step under the trapezoidal rule, the
//! step is first retried at the same size with backward Euler (stiffer,
//! L-stable) before the step size is cut. When the step size still
//! underflows `h_min`, [`transient_salvage`] returns everything computed so
//! far — partial waveform plus a [`TranFailure`] diagnostic — instead of
//! discarding hours of simulation; [`transient`] keeps the strict
//! all-or-nothing contract on top of it.

use super::budget::{BudgetTracker, Phase, RunBudget};
use super::dc::{self, DcOptions};
use super::mna::{Assembler, EvalMode, Integration, Method, SolveWorkspace};
use crate::error::Error;
use crate::linalg::SolveQuality;
use crate::netlist::{Circuit, NodeId};
use crate::telemetry::{self, TelemetrySummary};
use std::time::Instant;

/// Which quantities a transient run records.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Probe {
    /// Record every node voltage (default).
    #[default]
    AllNodes,
    /// Record only the listed nodes — use for big sweeps to save memory.
    Nodes(Vec<NodeId>),
}

/// Options for [`transient`].
#[derive(Debug, Clone, PartialEq)]
pub struct TranOptions {
    /// End time, seconds.
    pub t_stop: f64,
    /// Largest allowed step (`0.0` → `t_stop / 200`).
    pub h_max: f64,
    /// Smallest allowed step before the run aborts.
    pub h_min: f64,
    /// First step and re-start step after breakpoints (`0.0` → `h_max / 100`).
    pub h_init: f64,
    /// Largest node-voltage change accepted in one step, volts. This is the
    /// accuracy knob: smaller values resolve edges more finely.
    pub dv_max: f64,
    /// Integration method for ordinary steps.
    pub method: Method,
    /// What to record.
    pub probes: Probe,
    /// Newton/convergence options shared with the DC stage.
    pub dc: DcOptions,
    /// SPICE-style `.IC`: node voltages forced at `t = 0` *after* the DC
    /// operating point (charge states are initialized from the overridden
    /// vector). Useful to start an analysis from a known pre-history, e.g.
    /// a detector capacitor still at the rail when test mode engages.
    pub initial_voltages: Vec<(NodeId, f64)>,
    /// Execution budget for the whole transient call — wall clock,
    /// total Newton iterations, timestep attempts, cancellation. This
    /// field (not `dc.budget`, which only governs standalone DC calls)
    /// bounds the run, including its initial operating point.
    pub budget: RunBudget,
}

impl TranOptions {
    /// Reasonable defaults for a run of length `t_stop` seconds.
    pub fn new(t_stop: f64) -> Self {
        Self {
            t_stop,
            h_max: 0.0,
            h_min: 1.0e-18,
            h_init: 0.0,
            dv_max: 0.06,
            method: Method::Trapezoidal,
            probes: Probe::AllNodes,
            dc: DcOptions::default(),
            initial_voltages: Vec::new(),
            budget: RunBudget::default(),
        }
    }

    /// Sets the maximum step size.
    pub fn with_h_max(mut self, h_max: f64) -> Self {
        self.h_max = h_max;
        self
    }

    /// Sets the per-step voltage-change bound (accuracy knob).
    pub fn with_dv_max(mut self, dv_max: f64) -> Self {
        self.dv_max = dv_max;
        self
    }

    /// Restricts recording to the given nodes.
    pub fn with_probes(mut self, nodes: Vec<NodeId>) -> Self {
        self.probes = Probe::Nodes(nodes);
        self
    }

    /// Forces node voltages at `t = 0` (SPICE `.IC`).
    pub fn with_initial_voltage(mut self, node: NodeId, volts: f64) -> Self {
        self.initial_voltages.push((node, volts));
        self
    }

    /// Sets the execution budget for the run.
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    fn resolved(&self) -> Result<(f64, f64), Error> {
        if !(self.t_stop.is_finite() && self.t_stop > 0.0) {
            return Err(Error::InvalidOptions(format!(
                "t_stop must be positive, got {}",
                self.t_stop
            )));
        }
        let h_max = if self.h_max > 0.0 {
            self.h_max
        } else {
            self.t_stop / 200.0
        };
        let h_init = if self.h_init > 0.0 {
            self.h_init
        } else {
            h_max / 100.0
        };
        Ok((h_max, h_init))
    }
}

/// Diagnostic attached to a salvaged (incomplete) transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TranFailure {
    /// Simulation time reached before the run gave up, seconds.
    pub time: f64,
    /// Fraction of the requested interval that was completed, in `[0, 1]`.
    pub progress: f64,
    /// The underlying solver error (timestep underflow or convergence).
    pub error: Error,
}

impl TranFailure {
    /// One-line human-readable account, e.g.
    /// `"died at t = 1.2e-9 s (34% of the run): transient timestep …"`.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "died at t = {:.4e} s ({:.0}% of the run): {}",
            self.time,
            self.progress * 100.0,
            self.error
        )
    }
}

/// Result of a transient run: a shared time axis plus one trace per probe.
///
/// A result from [`transient_salvage`] may be *partial*: check
/// [`TranResult::failure`] (or [`TranResult::is_complete`]) before treating
/// the waveform as covering the full requested interval.
#[derive(Debug, Clone)]
pub struct TranResult {
    time: Vec<f64>,
    nodes: Vec<NodeId>,
    data: Vec<Vec<f64>>,
    accepted_steps: usize,
    rejected_steps: usize,
    newton_iterations: usize,
    failure: Option<TranFailure>,
    quality: SolveQuality,
    telemetry: TelemetrySummary,
}

/// Equality covers the numerical outcome only; the telemetry rollup is
/// excluded because its wall-clock component differs between otherwise
/// identical runs.
impl PartialEq for TranResult {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time
            && self.nodes == other.nodes
            && self.data == other.data
            && self.accepted_steps == other.accepted_steps
            && self.rejected_steps == other.rejected_steps
            && self.newton_iterations == other.newton_iterations
            && self.failure == other.failure
            && self.quality == other.quality
    }
}

impl TranResult {
    /// The time axis, seconds.
    pub fn time(&self) -> &[f64] {
        &self.time
    }

    /// The recorded trace of `node`, if it was probed.
    pub fn trace(&self, node: NodeId) -> Option<&[f64]> {
        self.nodes
            .iter()
            .position(|&n| n == node)
            .map(|k| self.data[k].as_slice())
    }

    /// Nodes that were recorded.
    pub fn probed_nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of accepted timesteps.
    pub fn accepted_steps(&self) -> usize {
        self.accepted_steps
    }

    /// Number of rejected timestep attempts.
    pub fn rejected_steps(&self) -> usize {
        self.rejected_steps
    }

    /// Total Newton iterations across the run (performance diagnostic).
    pub fn newton_iterations(&self) -> usize {
        self.newton_iterations
    }

    /// Why the run stopped early, when it did. `None` means the run covered
    /// the full requested interval.
    pub fn failure(&self) -> Option<&TranFailure> {
        self.failure.as_ref()
    }

    /// Whether the run covered the full requested interval.
    pub fn is_complete(&self) -> bool {
        self.failure.is_none()
    }

    /// Worst linear-solve certification across the run: the pessimistic
    /// merge of the operating point's quality and that of every completed
    /// Newton block (accepted or rejected steps alike).
    pub fn quality(&self) -> SolveQuality {
        self.quality
    }

    /// Telemetry rollup for this run: wall time, step and Newton counters,
    /// and the LU-kernel work attributable to this call (see
    /// [`TelemetrySummary`]).
    pub fn telemetry(&self) -> &TelemetrySummary {
        &self.telemetry
    }
}

/// Runs a transient analysis, failing the whole run on any mid-run error.
///
/// # Errors
///
/// Fails when the initial operating point cannot be found or the step size
/// underflows `h_min` ([`Error::TimestepTooSmall`]). Use
/// [`transient_salvage`] to keep the partial waveform instead.
pub fn transient(circuit: &Circuit, opts: &TranOptions) -> Result<TranResult, Error> {
    let mut ws = SolveWorkspace::for_circuit(circuit);
    transient_with(circuit, opts, &mut ws)
}

/// [`transient`] with a caller-owned [`SolveWorkspace`].
///
/// Sweeps that simulate many variants of the same topology pass one
/// workspace across runs so the cached stamp map and symbolic
/// factorization carry over (falling back automatically whenever the
/// matrix pattern actually changes).
///
/// # Errors
///
/// Same contract as [`transient`].
pub fn transient_with(
    circuit: &Circuit,
    opts: &TranOptions,
    ws: &mut SolveWorkspace,
) -> Result<TranResult, Error> {
    let result = transient_salvage_with(circuit, opts, ws)?;
    match result.failure() {
        Some(fail) => Err(fail.error.clone()),
        None => Ok(result),
    }
}

/// Runs a transient analysis, salvaging the partial waveform on mid-run
/// failure.
///
/// Unlike [`transient`], a run that dies partway through returns
/// `Ok` with everything computed up to the failure point and a
/// [`TranFailure`] diagnostic attached ([`TranResult::failure`]), so a
/// sweep corner that lasts 95% of the interval still contributes data.
///
/// # Errors
///
/// Fails only when the run cannot *start*: invalid options, no DC
/// operating point (the recovery ladder exhausted — see
/// [`Error::DcNoConvergence`]), or a budget already spent before the
/// first timestep. A budget that runs out *mid-run* is salvaged like any
/// other failure: the prefix is kept and the attached [`TranFailure`]
/// carries [`Error::DeadlineExceeded`].
pub fn transient_salvage(circuit: &Circuit, opts: &TranOptions) -> Result<TranResult, Error> {
    let mut ws = SolveWorkspace::for_circuit(circuit);
    transient_salvage_with(circuit, opts, &mut ws)
}

/// [`transient_salvage`] with a caller-owned [`SolveWorkspace`]; see
/// [`transient_with`] for when that pays off.
///
/// # Errors
///
/// Same contract as [`transient_salvage`].
pub fn transient_salvage_with(
    circuit: &Circuit,
    opts: &TranOptions,
    ws: &mut SolveWorkspace,
) -> Result<TranResult, Error> {
    let (h_max, h_init) = opts.resolved()?;
    let started = Instant::now();
    let lu_before = ws.solver.stats();
    let _tran_span = telemetry::span("transient");
    let mut assembler = Assembler::new(circuit);
    let mut tracker = BudgetTracker::new(&opts.budget, Phase::Transient);

    // Initial operating point with sources at t = 0.
    let mut x = dc::operating_point_with(circuit, &opts.dc, &mut assembler, ws, &mut tracker)?;
    // Apply .IC overrides before charge initialization so capacitors start
    // from the forced voltages.
    for &(node, volts) in &opts.initial_voltages {
        if let Some(i) = node.unknown() {
            x[i] = volts;
        }
    }
    assembler.init_charges(&x);

    // Breakpoints from every source.
    let mut breakpoints: Vec<f64> = Vec::new();
    for (_, e) in circuit.elements() {
        match e {
            crate::netlist::Element::VoltageSource { wave, .. }
            | crate::netlist::Element::CurrentSource { wave, .. } => {
                wave.breakpoints(opts.t_stop, &mut breakpoints);
            }
            _ => {}
        }
    }
    breakpoints.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
    breakpoints.dedup_by(|a, b| (*a - *b).abs() < 1e-18);
    let mut bp_iter = breakpoints.into_iter().peekable();

    // Probe bookkeeping.
    let nodes: Vec<NodeId> = match &opts.probes {
        Probe::AllNodes => circuit.node_ids().collect(),
        Probe::Nodes(list) => list.clone(),
    };
    let mut result = TranResult {
        time: Vec::new(),
        nodes: nodes.clone(),
        data: vec![Vec::new(); nodes.len()],
        accepted_steps: 0,
        rejected_steps: 0,
        newton_iterations: 0,
        failure: None,
        quality: ws.solver.last_quality(),
        telemetry: TelemetrySummary::default(),
    };
    fn record(result: &mut TranResult, t: f64, x: &[f64]) {
        result.time.push(t);
        for k in 0..result.nodes.len() {
            let v = match result.nodes[k].unknown() {
                Some(i) => x[i],
                None => 0.0,
            };
            result.data[k].push(v);
        }
    }
    record(&mut result, 0.0, &x);

    let n_nodes = circuit.node_unknowns();

    let mut t = 0.0;
    let mut h = h_init.min(h_max);
    let mut prev: Option<(Vec<f64>, f64)> = None; // (x at previous point, h used)
    let mut force_be = true; // first step after DC: backward Euler
    let mut be_retry = false; // salvage: retry a failed trap step with BE
    let t_end = opts.t_stop;

    while t < t_end * (1.0 - 1e-12) {
        h = h.min(h_max).min(t_end - t);
        // Land exactly on the next breakpoint.
        let mut hit_bp = false;
        if let Some(&bp) = bp_iter.peek() {
            if t + h >= bp - 1e-21 {
                h = bp - t;
                hit_bp = true;
                if h <= 0.0 {
                    bp_iter.next();
                    continue;
                }
            }
        }

        // Budget gate: one timestep attempt (accepted or rejected) is the
        // unit of accounting. A budget that runs out here salvages the
        // prefix computed so far instead of erroring the whole run.
        tracker.set_progress((t / t_end).clamp(0.0, 1.0));
        if let Err(err) = tracker.check() {
            result.failure = Some(TranFailure {
                time: t,
                progress: (t / t_end).clamp(0.0, 1.0),
                error: err,
            });
            break;
        }
        tracker.count_timestep();

        // Predictor: linear extrapolation of the last accepted step.
        let mut guess = x.clone();
        if let Some((x_prev, h_prev)) = &prev {
            if *h_prev > 0.0 {
                let r = h / h_prev;
                for i in 0..guess.len() {
                    guess[i] = x[i] + (x[i] - x_prev[i]) * r;
                }
            }
        }

        let method = if force_be || be_retry {
            Method::BackwardEuler
        } else {
            opts.method
        };
        let mode = EvalMode {
            integ: Integration::Step { method, h },
            time: t + h,
            gmin: opts.dc.gmin,
            source_scale: 1.0,
        };
        assembler.reset_junctions(&x);
        match dc::newton(
            &mut assembler,
            &mode,
            &mut guess,
            &opts.dc,
            ws,
            &mut tracker,
        ) {
            Ok(iters) => {
                result.newton_iterations += iters;
                result.quality = result.quality.worst(ws.solver.last_quality());
                // Voltage-change step control.
                let dv = guess[..n_nodes]
                    .iter()
                    .zip(&x[..n_nodes])
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                if dv > opts.dv_max && h > 4.0 * opts.h_min && !(hit_bp && h <= h_init) {
                    result.rejected_steps += 1;
                    be_retry = false;
                    if telemetry::enabled() {
                        telemetry::event(
                            "step_reject_dv",
                            &[
                                ("t", t.into()),
                                ("h", h.into()),
                                ("dv", dv.into()),
                                ("dv_max", opts.dv_max.into()),
                            ],
                        );
                    }
                    h *= (opts.dv_max / dv).max(0.25) * 0.9;
                    continue;
                }
                // Accept.
                assembler.commit_charges();
                prev = Some((std::mem::replace(&mut x, guess), h));
                t += h;
                result.accepted_steps += 1;
                record(&mut result, t, &x);
                if telemetry::enabled() {
                    telemetry::event(
                        "step_accept",
                        &[
                            ("t", t.into()),
                            ("h", h.into()),
                            ("iters", iters.into()),
                            ("dv", dv.into()),
                        ],
                    );
                }
                be_retry = false;
                if hit_bp {
                    bp_iter.next();
                    h = h_init;
                    force_be = true;
                } else {
                    force_be = false;
                    if iters <= 5 && dv < 0.5 * opts.dv_max {
                        h *= 1.5;
                    }
                }
            }
            // A spent budget or a failed certification inside the step is
            // non-retriable: no BE retry, no step shrink — salvage the
            // prefix immediately.
            Err(err) if err.is_non_retriable() => {
                result.failure = Some(TranFailure {
                    time: t,
                    progress: (t / t_end).clamp(0.0, 1.0),
                    error: err,
                });
                break;
            }
            Err(err) => {
                result.rejected_steps += 1;
                // Salvage rung 1: a trapezoidal step that Newton rejects is
                // often rescued by backward Euler at the *same* size (no
                // trap ringing, heavier damping). Try that once before
                // shrinking the step.
                if !be_retry && method == Method::Trapezoidal {
                    be_retry = true;
                    if telemetry::enabled() {
                        telemetry::event("be_retry", &[("t", t.into()), ("h", h.into())]);
                    }
                    continue;
                }
                be_retry = false;
                if telemetry::enabled() {
                    telemetry::event("step_reject_newton", &[("t", t.into()), ("h", h.into())]);
                }
                h *= 0.25;
                if h < opts.h_min {
                    // Salvage rung 2: keep the waveform computed so far and
                    // report where and why the run died.
                    result.failure = Some(TranFailure {
                        time: t,
                        progress: (t / t_end).clamp(0.0, 1.0),
                        error: match err {
                            e @ Error::SingularMatrix { .. } => e,
                            _ => Error::TimestepTooSmall { time: t, step: h },
                        },
                    });
                    break;
                }
            }
        }
    }
    if telemetry::enabled() {
        // Deadline and certification failures already dumped the flight
        // recorder at their source (budget tracker / solve certifier); dump
        // here only for failures first diagnosed by the stepper itself.
        if let Some(fail) = &result.failure {
            if !matches!(
                fail.error,
                Error::DeadlineExceeded { .. } | Error::UntrustedSolution { .. }
            ) {
                telemetry::record_failure("TranFailure", &fail.summary());
            }
        }
    }
    result.telemetry = TelemetrySummary {
        wall: started.elapsed(),
        newton_iterations: result.newton_iterations as u64,
        accepted_steps: result.accepted_steps as u64,
        rejected_steps: result.rejected_steps as u64,
        lu: ws.solver.stats().delta_since(&lu_before),
        worst_backward_error: Some(result.quality.backward_error),
        cond_estimate: result.quality.cond_estimate,
        ..TelemetrySummary::default()
    };
    telemetry::record_summary(&result.telemetry);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{Netlist, SourceWave};

    #[test]
    fn rc_charge_curve() {
        // R = 1 kΩ, C = 1 nF, step to 1 V: v(t) = 1 - exp(-t/RC).
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource(
            "V1",
            a,
            Netlist::GROUND,
            SourceWave::Pwl(vec![(0.0, 0.0), (1e-12, 1.0)]),
        )
        .unwrap();
        nl.resistor("R1", a, b, 1.0e3).unwrap();
        nl.capacitor("C1", b, Netlist::GROUND, 1.0e-9).unwrap();
        let c = nl.compile().unwrap();
        let opts = TranOptions::new(5.0e-6).with_dv_max(0.02);
        let res = transient(&c, &opts).unwrap();
        let trace = res.trace(b).unwrap();
        let time = res.time();
        let rc = 1.0e-6;
        for (k, (&t, &v)) in time.iter().zip(trace).enumerate() {
            if t < 5e-12 {
                continue;
            }
            let expected = 1.0 - (-(t - 1e-12) / rc).exp();
            assert!(
                (v - expected).abs() < 5e-3,
                "step {k}: t={t:.3e} v={v:.4} expected {expected:.4}"
            );
        }
        // Final value is 5 time constants in: 1 - e^-5.
        let final_expected = 1.0 - (-5.0f64).exp();
        assert!((trace.last().unwrap() - final_expected).abs() < 5e-3);
    }

    #[test]
    fn rl_current_rise() {
        // V = 1 V, R = 10 Ω, L = 1 µH: node b voltage decays exp(-tR/L).
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource(
            "V1",
            a,
            Netlist::GROUND,
            SourceWave::Pwl(vec![(0.0, 0.0), (1e-12, 1.0)]),
        )
        .unwrap();
        nl.resistor("R1", a, b, 10.0).unwrap();
        nl.inductor("L1", b, Netlist::GROUND, 1.0e-6).unwrap();
        let c = nl.compile().unwrap();
        let opts = TranOptions::new(5.0e-7).with_dv_max(0.02);
        let res = transient(&c, &opts).unwrap();
        let trace = res.trace(b).unwrap();
        let time = res.time();
        let tau = 1.0e-6 / 10.0;
        for (&t, &v) in time.iter().zip(trace) {
            if t < 1e-11 {
                continue;
            }
            let expected = (-(t - 1e-12) / tau).exp();
            assert!(
                (v - expected).abs() < 2e-2,
                "t={t:.3e} v={v:.4} expected {expected:.4}"
            );
        }
    }

    #[test]
    fn sine_through_rc_attenuates() {
        // 1 MHz sine through RC low-pass with corner at 159 kHz: expect
        // roughly 6.3x attenuation and ~81° phase lag; just check the
        // amplitude band.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource(
            "V1",
            a,
            Netlist::GROUND,
            SourceWave::Sin {
                offset: 0.0,
                amplitude: 1.0,
                freq: 1.0e6,
                delay: 0.0,
            },
        )
        .unwrap();
        nl.resistor("R1", a, b, 1.0e3).unwrap();
        nl.capacitor("C1", b, Netlist::GROUND, 1.0e-9).unwrap();
        let c = nl.compile().unwrap();
        let res = transient(&c, &TranOptions::new(5.0e-6).with_dv_max(0.03)).unwrap();
        let trace = res.trace(b).unwrap();
        let time = res.time();
        // Look at the last 2 periods only (steady state).
        let amp = time
            .iter()
            .zip(trace)
            .filter(|(&t, _)| t > 3.0e-6)
            .map(|(_, &v)| v.abs())
            .fold(0.0f64, f64::max);
        let expected = 1.0 / (1.0 + (2.0 * std::f64::consts::PI * 1.0e6 * 1.0e-6).powi(2)).sqrt();
        assert!(
            (amp - expected).abs() < 0.15 * expected,
            "amplitude {amp:.4} expected {expected:.4}"
        );
    }

    #[test]
    fn breakpoints_are_hit_exactly() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource(
            "V1",
            a,
            Netlist::GROUND,
            SourceWave::square(0.0, 1.0, 1.0e8, 0.2),
        )
        .unwrap();
        nl.resistor("R1", a, Netlist::GROUND, 1.0e3).unwrap();
        let c = nl.compile().unwrap();
        let res = transient(&c, &TranOptions::new(2.0e-8)).unwrap();
        // The first rising-edge end is at 1 ns (edge = 0.2·10ns/2).
        let has = |t0: f64| res.time().iter().any(|&t| (t - t0).abs() < 1e-18);
        assert!(has(1.0e-9), "edge corner missing from time axis");
        assert!(has(5.0e-9), "plateau corner missing from time axis");
    }

    #[test]
    fn probe_subset_records_only_requested() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vdc("V1", a, Netlist::GROUND, 1.0).unwrap();
        nl.resistor("R1", a, b, 1.0e3).unwrap();
        nl.resistor("R2", b, Netlist::GROUND, 1.0e3).unwrap();
        let c = nl.compile().unwrap();
        let opts = TranOptions::new(1.0e-9).with_probes(vec![b]);
        let res = transient(&c, &opts).unwrap();
        assert!(res.trace(b).is_some());
        assert!(res.trace(a).is_none());
        assert_eq!(res.probed_nodes(), &[b]);
    }

    #[test]
    fn initial_condition_overrides_dc() {
        // RC with source at 1 V but capacitor forced to start at 0.5 V:
        // the trace must begin near 0.5 and relax up to 1 V.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vdc("V1", a, Netlist::GROUND, 1.0).unwrap();
        nl.resistor("R1", a, b, 1.0e3).unwrap();
        nl.capacitor("C1", b, Netlist::GROUND, 1.0e-9).unwrap();
        let c = nl.compile().unwrap();
        let opts = TranOptions::new(5.0e-6).with_initial_voltage(b, 0.5);
        let res = transient(&c, &opts).unwrap();
        let trace = res.trace(b).unwrap();
        assert!((trace[0] - 0.5).abs() < 1e-9, "start {}", trace[0]);
        assert!((trace.last().unwrap() - 1.0).abs() < 5e-3);
        // Monotone rise.
        assert!(trace.windows(2).all(|w| w[1] >= w[0] - 1e-6));
    }

    #[test]
    fn invalid_t_stop_rejected() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vdc("V1", a, Netlist::GROUND, 1.0).unwrap();
        nl.resistor("R1", a, Netlist::GROUND, 1.0).unwrap();
        let c = nl.compile().unwrap();
        assert!(transient(&c, &TranOptions::new(-1.0)).is_err());
        assert!(transient(&c, &TranOptions::new(0.0)).is_err());
    }

    #[test]
    fn salvage_on_complete_run_has_no_failure() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vdc("V1", a, Netlist::GROUND, 1.0).unwrap();
        nl.resistor("R1", a, b, 1.0e3).unwrap();
        nl.capacitor("C1", b, Netlist::GROUND, 1.0e-9).unwrap();
        let c = nl.compile().unwrap();
        let res = transient_salvage(&c, &TranOptions::new(1.0e-7)).unwrap();
        assert!(res.is_complete());
        assert!(res.failure().is_none());
        let strict = transient(&c, &TranOptions::new(1.0e-7)).unwrap();
        assert_eq!(strict, res);
    }

    #[test]
    fn salvage_keeps_partial_waveform_on_midrun_failure() {
        // A diode hit by a fast edge, with Newton starved to 2 iterations:
        // the DC point at t = 0 (source at 0 V) still converges, but the
        // nonlinear steps on the edge cannot, and every backoff fails the
        // same way until h underflows. The salvaged result must keep the
        // pre-edge samples and carry the diagnostic.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let d = nl.node("d");
        nl.vsource(
            "V1",
            a,
            Netlist::GROUND,
            SourceWave::Pwl(vec![(0.0, 0.0), (5.0e-9, 0.0), (5.1e-9, 5.0)]),
        )
        .unwrap();
        nl.resistor("R1", a, d, 100.0).unwrap();
        nl.diode("D1", d, Netlist::GROUND, crate::devices::DiodeModel::new())
            .unwrap();
        let c = nl.compile().unwrap();
        let mut opts = TranOptions::new(2.0e-8);
        opts.dc.max_iterations = 2;
        opts.h_min = 1.0e-12;
        let res = transient_salvage(&c, &opts).expect("starts fine: source is 0 at t = 0");
        let fail = res.failure().expect("starved Newton must die on the edge");
        assert!(!res.is_complete());
        assert!(fail.time >= 0.0 && fail.time < 2.0e-8);
        assert!((0.0..1.0).contains(&fail.progress));
        assert!(fail.summary().contains("died at"));
        assert_eq!(res.time().len(), res.accepted_steps() + 1);
        assert!(res.accepted_steps() > 0, "pre-edge samples were discarded");
        // Strict wrapper refuses the same run with the same error.
        assert_eq!(transient(&c, &opts).unwrap_err(), fail.error);
    }

    #[test]
    fn be_retry_rescues_trap_failures() {
        // Same starved-Newton edge, but with a budget where backward Euler
        // (no trap ringing) converges while trapezoidal needs more: the
        // run should complete, with rejections recorded for the retries.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let d = nl.node("d");
        nl.vsource(
            "V1",
            a,
            Netlist::GROUND,
            SourceWave::Pwl(vec![(0.0, 0.0), (5.0e-9, 0.0), (6.0e-9, 2.0)]),
        )
        .unwrap();
        nl.resistor("R1", a, d, 1.0e3).unwrap();
        nl.capacitor("CD", d, Netlist::GROUND, 1.0e-12).unwrap();
        nl.diode("D1", d, Netlist::GROUND, crate::devices::DiodeModel::new())
            .unwrap();
        let c = nl.compile().unwrap();
        let res = transient_salvage(&c, &TranOptions::new(2.0e-8)).unwrap();
        assert!(res.is_complete(), "{:?}", res.failure());
    }

    #[test]
    fn step_counters_are_populated() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource(
            "V1",
            a,
            Netlist::GROUND,
            SourceWave::square(0.0, 1.0, 1.0e8, 0.2),
        )
        .unwrap();
        nl.resistor("R1", a, Netlist::GROUND, 1.0e3).unwrap();
        let c = nl.compile().unwrap();
        let res = transient(&c, &TranOptions::new(1.0e-8)).unwrap();
        assert!(res.accepted_steps() > 10);
        assert!(res.newton_iterations() >= res.accepted_steps());
        assert_eq!(res.time().len(), res.accepted_steps() + 1);
    }
}
