//! Parameter sweeps with thread-level parallelism.
//!
//! The paper's figures are all parameter sweeps (pipe resistance ×
//! frequency × load capacitance). Individual transient runs are
//! single-threaded; [`par_map`] fans independent runs out over OS threads
//! with `std::thread::scope`, so no external dependency is needed.

/// Maps `f` over `items` in parallel, preserving order.
///
/// Spawns at most `available_parallelism()` worker threads. Panics in `f`
/// propagate to the caller.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n_workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if n_workers <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let work: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let queue = std::sync::Mutex::new(work);
    let results = std::sync::Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| loop {
                let item = queue.lock().expect("queue lock").pop();
                match item {
                    Some((idx, value)) => {
                        let r = f(value);
                        results.lock().expect("results lock")[idx] = Some(r);
                    }
                    None => break,
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("all slots filled"))
        .collect()
}

/// Cartesian product of two parameter lists, row-major.
pub fn grid2<A: Clone, B: Clone>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for x in a {
        for y in b {
            out.push((x.clone(), y.clone()));
        }
    }
    out
}

/// Cartesian product of three parameter lists, row-major.
pub fn grid3<A: Clone, B: Clone, C: Clone>(a: &[A], b: &[B], c: &[C]) -> Vec<(A, B, C)> {
    let mut out = Vec::with_capacity(a.len() * b.len() * c.len());
    for x in a {
        for y in b {
            for z in c {
                out.push((x.clone(), y.clone(), z.clone()));
            }
        }
    }
    out
}

/// Evenly spaced values from `start` to `stop` inclusive.
pub fn linspace(start: f64, stop: f64, count: usize) -> Vec<f64> {
    match count {
        0 => Vec::new(),
        1 => vec![start],
        _ => (0..count)
            .map(|i| start + (stop - start) * i as f64 / (count - 1) as f64)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..100).collect(), |i: i32| i * i);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as i32);
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<i32> = par_map(Vec::new(), |i: i32| i);
        assert!(empty.is_empty());
        assert_eq!(par_map(vec![7], |i: i32| i + 1), vec![8]);
    }

    #[test]
    fn grids() {
        assert_eq!(
            grid2(&[1, 2], &['a', 'b']),
            vec![(1, 'a'), (1, 'b'), (2, 'a'), (2, 'b')]
        );
        assert_eq!(grid3(&[1], &[2], &[3, 4]), vec![(1, 2, 3), (1, 2, 4)]);
    }

    #[test]
    fn linspace_endpoints() {
        let v = linspace(0.0, 1.0, 5);
        assert_eq!(v, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(linspace(2.0, 3.0, 1), vec![2.0]);
        assert!(linspace(0.0, 1.0, 0).is_empty());
    }
}
