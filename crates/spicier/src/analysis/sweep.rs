//! Parameter sweeps with thread-level parallelism and fault isolation.
//!
//! The paper's figures are all parameter sweeps (pipe resistance ×
//! frequency × load capacitance). Individual transient runs are
//! single-threaded; [`par_map`] fans independent runs out over OS threads
//! with `std::thread::scope`, so no external dependency is needed.
//!
//! [`par_try_map`] is the resilient variant: each corner runs behind
//! `catch_unwind`, solver errors and panics are captured per corner (with
//! optional retry and a wall-clock budget) instead of killing the whole
//! sweep, and a [`SweepReport`] records exactly which corners failed and
//! why — one diverging corner costs one missing data point, not the run.

use super::budget::{with_corner_token, CancelHandle, CancelToken};
use crate::error::Error;
use crate::telemetry;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Locks a mutex, ignoring poisoning: a worker that panicked mid-corner
/// must not take the bookkeeping (and thus every other corner) down with
/// it. The guarded data stays consistent because each slot is written at
/// most once, after the fallible work has already finished.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Maps `f` over `items` in parallel, preserving order.
///
/// Spawns at most `available_parallelism()` worker threads. Panics in `f`
/// propagate to the caller (use [`par_try_map`] to isolate them instead);
/// a panicking worker no longer poisons the other workers' queue.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_with(items, || (), |(), value| f(value))
}

/// [`par_map`] with per-worker scratch state, preserving order.
///
/// `init` runs once on each worker thread; the scratch it builds is handed
/// to `f` for every corner that worker dequeues. Sweeps use this to keep
/// one solver workspace per thread, so consecutive corners with the same
/// matrix pattern reuse the cached stamp map and symbolic factorization.
pub fn par_map_with<T, S, R, I, F>(items: Vec<T>, init: I, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let n_workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if n_workers <= 1 || items.len() <= 1 {
        let mut scratch = init();
        return items.into_iter().map(|v| f(&mut scratch, v)).collect();
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let work: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let queue = Mutex::new(work);
    let results = Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| {
                let mut scratch = init();
                loop {
                    let item = lock(&queue).pop();
                    match item {
                        Some((idx, value)) => {
                            let r = f(&mut scratch, value);
                            lock(&results)[idx] = Some(r);
                        }
                        None => break,
                    }
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("all slots filled"))
        .collect()
}

/// Why one sweep corner produced no result.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepFailure {
    /// The solver returned a structured error (no convergence, singular
    /// matrix, timestep underflow, ...).
    Solver(Error),
    /// The corner's closure panicked; the payload message is preserved.
    Panicked(String),
    /// The corner never ran: the sweep's wall-clock budget was exhausted.
    Skipped,
    /// The corner exceeded its per-corner deadline
    /// ([`TryMapOptions::corner_deadline`]) and was cancelled mid-solve.
    TimedOut {
        /// Wall-clock time the corner ran before cancellation (across all
        /// attempts).
        elapsed: Duration,
        /// The [`Error::DeadlineExceeded`] that surfaced from the solve,
        /// carrying the interrupted phase and its partial progress.
        error: Error,
    },
    /// Residual certification failed at this corner: a solve completed but
    /// its backward error stayed above tolerance after refinement, so the
    /// numbers cannot be trusted. Quarantined without retry — re-running
    /// the same factorization reproduces the same untrusted solution.
    Untrusted {
        /// The [`Error::UntrustedSolution`] carrying the backward error,
        /// tolerance, and condition estimate.
        error: Error,
    },
    /// The sweep's external [`TryMapOptions::cancel`] handle was triggered:
    /// the corner was cancelled remotely (client disconnect, drain, an
    /// operator), as opposed to quietly running out its deadline slice.
    Cancelled {
        /// Wall-clock time the corner ran before the cancel landed
        /// (`Duration::ZERO` when it was cancelled before starting).
        elapsed: Duration,
        /// The [`Error::DeadlineExceeded`] that surfaced from the
        /// interrupted solve; `None` when the corner never ran.
        error: Option<Error>,
    },
}

impl SweepFailure {
    /// Short machine-readable tag for telemetry events.
    fn kind(&self) -> &'static str {
        match self {
            SweepFailure::Solver(_) => "solver",
            SweepFailure::Panicked(_) => "panicked",
            SweepFailure::Skipped => "skipped",
            SweepFailure::TimedOut { .. } => "timed-out",
            SweepFailure::Untrusted { .. } => "untrusted",
            SweepFailure::Cancelled { .. } => "cancelled",
        }
    }
}

impl std::fmt::Display for SweepFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepFailure::Solver(e) => write!(f, "solver error: {e}"),
            SweepFailure::Panicked(msg) => write!(f, "panicked: {msg}"),
            SweepFailure::Skipped => f.write_str("skipped: sweep budget exhausted"),
            SweepFailure::TimedOut { elapsed, error } => {
                write!(f, "timed out after {:.3} s: {error}", elapsed.as_secs_f64())
            }
            SweepFailure::Untrusted { error } => write!(f, "quarantined: {error}"),
            SweepFailure::Cancelled { elapsed, error } => match error {
                Some(e) => write!(f, "cancelled after {:.3} s: {e}", elapsed.as_secs_f64()),
                None => f.write_str("cancelled before start"),
            },
        }
    }
}

/// One failed corner of a [`par_try_map`] sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CornerFailure {
    /// Index of the corner in the input item list.
    pub index: usize,
    /// How many attempts ran (0 when the corner was skipped).
    pub attempts: usize,
    /// The final failure, after any retries.
    pub failure: SweepFailure,
}

/// Account of a fault-isolated sweep: how many corners ran, which failed
/// and why, and how long the whole sweep took.
#[derive(Debug, Clone)]
#[must_use]
pub struct SweepReport {
    /// Total number of corners in the sweep.
    pub total: usize,
    /// Corners that produced a result.
    pub succeeded: usize,
    /// Every failed corner, in input order.
    pub failures: Vec<CornerFailure>,
    /// Wall-clock time of the whole sweep.
    pub elapsed: Duration,
}

impl SweepReport {
    /// Whether every corner succeeded.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Number of corners quarantined for failed residual certification
    /// ([`SweepFailure::Untrusted`]).
    #[must_use]
    pub fn quarantined(&self) -> usize {
        self.failures
            .iter()
            .filter(|f| matches!(f.failure, SweepFailure::Untrusted { .. }))
            .count()
    }

    /// Number of corners cancelled through the sweep's external
    /// [`TryMapOptions::cancel`] handle ([`SweepFailure::Cancelled`]).
    #[must_use]
    pub fn cancelled(&self) -> usize {
        self.failures
            .iter()
            .filter(|f| matches!(f.failure, SweepFailure::Cancelled { .. }))
            .count()
    }

    /// One-line summary, e.g.
    /// `"38/40 corners ok in 2.1 s (1 solver failure, 1 panicked)"`.
    #[must_use]
    pub fn summary(&self) -> String {
        let secs = self.elapsed.as_secs_f64();
        if self.all_ok() {
            return format!(
                "{}/{} corners ok in {:.1} s",
                self.succeeded, self.total, secs
            );
        }
        let mut solver = 0usize;
        let mut panicked = 0usize;
        let mut skipped = 0usize;
        let mut timed_out = 0usize;
        let mut quarantined = 0usize;
        let mut cancelled = 0usize;
        for fail in &self.failures {
            match fail.failure {
                SweepFailure::Solver(_) => solver += 1,
                SweepFailure::Panicked(_) => panicked += 1,
                SweepFailure::Skipped => skipped += 1,
                SweepFailure::TimedOut { .. } => timed_out += 1,
                SweepFailure::Untrusted { .. } => quarantined += 1,
                SweepFailure::Cancelled { .. } => cancelled += 1,
            }
        }
        let mut parts = Vec::new();
        if solver > 0 {
            parts.push(format!(
                "{solver} solver failure{}",
                if solver == 1 { "" } else { "s" }
            ));
        }
        if panicked > 0 {
            parts.push(format!("{panicked} panicked"));
        }
        if skipped > 0 {
            parts.push(format!("{skipped} skipped"));
        }
        if timed_out > 0 {
            parts.push(format!("{timed_out} timed out"));
        }
        if quarantined > 0 {
            parts.push(format!("{quarantined} quarantined"));
        }
        if cancelled > 0 {
            parts.push(format!("{cancelled} cancelled"));
        }
        format!(
            "{}/{} corners ok in {:.1} s ({})",
            self.succeeded,
            self.total,
            secs,
            parts.join(", ")
        )
    }
}

/// Knobs for [`par_try_map`].
#[derive(Debug, Clone, Default)]
pub struct TryMapOptions {
    /// Extra attempts per corner after the first failure (solver error or
    /// panic). `0` means fail fast per corner.
    pub retries: usize,
    /// Wall-clock budget for the whole sweep. Corners dequeued after the
    /// budget is spent are recorded as [`SweepFailure::Skipped`] without
    /// running; corners already in flight are allowed to finish.
    pub budget: Option<Duration>,
    /// Wall-clock slice for each individual corner (all of its attempts
    /// together). The worker installs an expiring [`CancelToken`] around
    /// the corner's closure, so any budget-aware solve inside it —
    /// including ones that never see a `RunBudget` — cooperatively stops
    /// once the slice is spent. The corner is then recorded as
    /// [`SweepFailure::TimedOut`] (non-retriable) and the worker's scratch
    /// is rebuilt before its next corner.
    pub corner_deadline: Option<Duration>,
    /// Cap on worker threads (`None` → `available_parallelism()`). The
    /// determinism tests pin this to compare single- and multi-worker
    /// runs of the same sweep.
    pub max_workers: Option<usize>,
    /// External cancellation source for the whole sweep. Per-corner tokens
    /// are derived from it, so triggering the handle from *any* thread —
    /// a daemon connection handler reacting to a client disconnect, a
    /// drain loop, a test — stops in-flight solves at their next budget
    /// check and records the remaining corners as
    /// [`SweepFailure::Cancelled`] (distinguishable from
    /// [`SweepFailure::TimedOut`], whose deadline merely expired).
    pub cancel: Option<CancelHandle>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Maps fallible `f` over `items` in parallel with per-corner fault
/// isolation, preserving order.
///
/// Each corner's result lands in the returned vector (`None` for failed
/// corners), and the [`SweepReport`] records every failure — structured
/// solver errors *and* panics (caught with `catch_unwind`) — so one bad
/// corner can never abort the sweep or poison the other workers.
pub fn par_try_map<T, R, F>(
    items: Vec<T>,
    opts: &TryMapOptions,
    f: F,
) -> (Vec<Option<R>>, SweepReport)
where
    T: Send,
    R: Send,
    F: Fn(&T) -> Result<R, Error> + Sync,
{
    par_try_map_with(items, opts, || (), |(), value| f(value))
}

/// [`par_try_map`] with per-worker scratch state; see [`par_map_with`].
///
/// A corner that panics gets its worker's scratch rebuilt with `init`
/// before the next attempt, so a half-updated workspace can never leak
/// into later corners.
pub fn par_try_map_with<T, S, R, I, F>(
    items: Vec<T>,
    opts: &TryMapOptions,
    init: I,
    f: F,
) -> (Vec<Option<R>>, SweepReport)
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> Result<R, Error> + Sync,
{
    let started = Instant::now();
    let total = items.len();
    let n_workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(total.max(1))
        .min(opts.max_workers.unwrap_or(usize::MAX))
        .max(1);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(total);
    slots.resize_with(total, || None);
    let mut failures: Vec<CornerFailure> = Vec::new();

    {
        let work: Vec<(usize, T)> = items.into_iter().enumerate().collect();
        let queue = Mutex::new(work);
        let results = Mutex::new(&mut slots);
        let failed = Mutex::new(&mut failures);

        let worker = |worker_id: usize| {
            let mut scratch = init();
            let mut handled = 0usize;
            loop {
                let item = lock(&queue).pop();
                let Some((idx, value)) = item else { break };
                if opts.cancel.as_ref().is_some_and(CancelHandle::is_cancelled) {
                    // The sweep was cancelled externally; corners not yet
                    // started are recorded without running, like Skipped,
                    // but with the cancellation cause.
                    if telemetry::enabled() {
                        telemetry::event(
                            "corner_failed",
                            &[
                                ("index", idx.into()),
                                ("worker", worker_id.into()),
                                ("kind", "cancelled".into()),
                                ("attempts", 0usize.into()),
                            ],
                        );
                    }
                    lock(&failed).push(CornerFailure {
                        index: idx,
                        attempts: 0,
                        failure: SweepFailure::Cancelled {
                            elapsed: Duration::ZERO,
                            error: None,
                        },
                    });
                    continue;
                }
                if opts.budget.is_some_and(|b| started.elapsed() >= b) {
                    if telemetry::enabled() {
                        telemetry::event(
                            "corner_failed",
                            &[
                                ("index", idx.into()),
                                ("worker", worker_id.into()),
                                ("kind", "skipped".into()),
                                ("attempts", 0usize.into()),
                            ],
                        );
                    }
                    lock(&failed).push(CornerFailure {
                        index: idx,
                        attempts: 0,
                        failure: SweepFailure::Skipped,
                    });
                    continue;
                }
                let mut attempts = 0usize;
                let mut last = SweepFailure::Skipped;
                let corner_started = Instant::now();
                // One deadline slice covers all of the corner's attempts:
                // the token expires on wall clock, not per retry. With an
                // external handle wired in, the corner token is derived
                // from it so a remote cancel lands mid-solve.
                let token = match (&opts.cancel, opts.corner_deadline) {
                    (Some(handle), Some(slice)) => Some(handle.child_with_deadline(slice)),
                    (Some(handle), None) => Some(handle.child()),
                    (None, Some(slice)) => Some(CancelToken::with_deadline(slice)),
                    (None, None) => None,
                };
                let outcome = loop {
                    attempts += 1;
                    let mut attempt = || catch_unwind(AssertUnwindSafe(|| f(&mut scratch, &value)));
                    let result = match &token {
                        Some(tok) => with_corner_token(tok, attempt),
                        None => attempt(),
                    };
                    match result {
                        Ok(Ok(r)) => break Some(r),
                        Ok(Err(e)) if e.is_deadline_exceeded() => {
                            // Cancellation interrupts a solve mid-flight;
                            // the workspace may hold partial state, so
                            // rebuild it. Non-retriable: the slice is spent.
                            scratch = init();
                            // An explicit trigger on the external handle is
                            // a remote cancel; otherwise the corner's own
                            // deadline slice ran out.
                            let remote =
                                opts.cancel.as_ref().is_some_and(CancelHandle::is_cancelled);
                            last = if remote {
                                SweepFailure::Cancelled {
                                    elapsed: corner_started.elapsed(),
                                    error: Some(e),
                                }
                            } else {
                                SweepFailure::TimedOut {
                                    elapsed: corner_started.elapsed(),
                                    error: e,
                                }
                            };
                            break None;
                        }
                        Ok(Err(e)) if e.is_untrusted_solution() => {
                            // Certification failure is a property of the
                            // matrix, not of workspace state: a retry would
                            // reproduce the same untrusted numbers.
                            // Quarantine the corner, and rebuild the scratch
                            // anyway — the factorization it caches is the
                            // one that failed certification.
                            scratch = init();
                            last = SweepFailure::Untrusted { error: e };
                            break None;
                        }
                        Ok(Err(e)) => last = SweepFailure::Solver(e),
                        Err(payload) => {
                            // The panic may have left the scratch half
                            // updated; start the next attempt clean.
                            scratch = init();
                            last = SweepFailure::Panicked(panic_message(payload));
                        }
                    }
                    let out_of_budget = opts.budget.is_some_and(|b| started.elapsed() >= b);
                    if attempts > opts.retries || out_of_budget {
                        break None;
                    }
                };
                handled += 1;
                match outcome {
                    Some(r) => {
                        if telemetry::enabled() {
                            telemetry::event(
                                "corner_done",
                                &[
                                    ("index", idx.into()),
                                    ("worker", worker_id.into()),
                                    ("attempts", attempts.into()),
                                    (
                                        "elapsed_ms",
                                        (corner_started.elapsed().as_secs_f64() * 1e3).into(),
                                    ),
                                ],
                            );
                        }
                        lock(&results)[idx] = Some(r);
                    }
                    None => {
                        if telemetry::enabled() {
                            telemetry::event(
                                "corner_failed",
                                &[
                                    ("index", idx.into()),
                                    ("worker", worker_id.into()),
                                    ("kind", last.kind().into()),
                                    ("attempts", attempts.into()),
                                    (
                                        "elapsed_ms",
                                        (corner_started.elapsed().as_secs_f64() * 1e3).into(),
                                    ),
                                ],
                            );
                            telemetry::record_failure(
                                "CornerFailure",
                                &format!("corner {idx} failed after {attempts} attempt(s): {last}"),
                            );
                        }
                        lock(&failed).push(CornerFailure {
                            index: idx,
                            attempts,
                            failure: last,
                        });
                    }
                }
            }
            // Occupancy: how many corners this worker ended up draining —
            // a skewed distribution flags one slow corner starving the
            // sweep.
            if telemetry::enabled() {
                telemetry::event(
                    "worker_done",
                    &[("worker", worker_id.into()), ("corners", handled.into())],
                );
            }
        };

        if n_workers <= 1 || total <= 1 {
            worker(0);
        } else {
            std::thread::scope(|scope| {
                let worker = &worker;
                for worker_id in 0..n_workers {
                    scope.spawn(move || worker(worker_id));
                }
            });
        }
    }

    failures.sort_by_key(|fail| fail.index);
    let succeeded = slots.iter().filter(|s| s.is_some()).count();
    let report = SweepReport {
        total,
        succeeded,
        failures,
        elapsed: started.elapsed(),
    };
    (slots, report)
}

/// Cartesian product of two parameter lists, row-major.
pub fn grid2<A: Clone, B: Clone>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for x in a {
        for y in b {
            out.push((x.clone(), y.clone()));
        }
    }
    out
}

/// Cartesian product of three parameter lists, row-major.
pub fn grid3<A: Clone, B: Clone, C: Clone>(a: &[A], b: &[B], c: &[C]) -> Vec<(A, B, C)> {
    let mut out = Vec::with_capacity(a.len() * b.len() * c.len());
    for x in a {
        for y in b {
            for z in c {
                out.push((x.clone(), y.clone(), z.clone()));
            }
        }
    }
    out
}

/// Evenly spaced values from `start` to `stop` inclusive.
pub fn linspace(start: f64, stop: f64, count: usize) -> Vec<f64> {
    match count {
        0 => Vec::new(),
        1 => vec![start],
        _ => (0..count)
            .map(|i| start + (stop - start) * i as f64 / (count - 1) as f64)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..100).collect(), |i: i32| i * i);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as i32);
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<i32> = par_map(Vec::new(), |i: i32| i);
        assert!(empty.is_empty());
        assert_eq!(par_map(vec![7], |i: i32| i + 1), vec![8]);
    }

    #[test]
    fn try_map_isolates_panics_and_errors() {
        let items: Vec<i32> = (0..20).collect();
        let (out, report) = par_try_map(items, &TryMapOptions::default(), |&i| {
            if i == 3 {
                panic!("corner 3 blew up");
            }
            if i == 7 {
                return Err(Error::SingularMatrix { column: 1 });
            }
            Ok(i * 10)
        });
        assert_eq!(out.len(), 20);
        assert_eq!(report.total, 20);
        assert_eq!(report.succeeded, 18);
        assert_eq!(report.failures.len(), 2);
        assert!(!report.all_ok());
        for (i, slot) in out.iter().enumerate() {
            if i == 3 || i == 7 {
                assert!(slot.is_none());
            } else {
                assert_eq!(*slot, Some(i as i32 * 10));
            }
        }
        // Failures come back in input order with their causes.
        assert_eq!(report.failures[0].index, 3);
        assert!(matches!(
            &report.failures[0].failure,
            SweepFailure::Panicked(msg) if msg.contains("corner 3")
        ));
        assert_eq!(report.failures[1].index, 7);
        assert!(matches!(
            report.failures[1].failure,
            SweepFailure::Solver(Error::SingularMatrix { column: 1 })
        ));
        let summary = report.summary();
        assert!(summary.contains("18/20"), "{summary}");
        assert!(summary.contains("1 solver failure"), "{summary}");
        assert!(summary.contains("1 panicked"), "{summary}");
    }

    #[test]
    fn try_map_retries_flaky_corners() {
        let calls = AtomicUsize::new(0);
        let opts = TryMapOptions {
            retries: 1,
            ..TryMapOptions::default()
        };
        let (out, report) = par_try_map(vec![1], &opts, |&i| {
            // First attempt fails, retry succeeds.
            if calls.fetch_add(1, Ordering::SeqCst) == 0 {
                Err(Error::DcNoConvergence {
                    iterations: 1,
                    residual: 1.0,
                    report: None,
                })
            } else {
                Ok(i)
            }
        });
        assert_eq!(out, vec![Some(1)]);
        assert!(report.all_ok());
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn try_map_budget_skips_pending_corners() {
        let opts = TryMapOptions {
            budget: Some(Duration::ZERO),
            ..TryMapOptions::default()
        };
        let (out, report) = par_try_map((0..8).collect(), &opts, |&i: &i32| Ok(i));
        assert!(out.iter().all(Option::is_none));
        assert_eq!(report.succeeded, 0);
        assert_eq!(report.failures.len(), 8);
        assert!(report
            .failures
            .iter()
            .all(|f| f.failure == SweepFailure::Skipped && f.attempts == 0));
        assert!(report.summary().contains("8 skipped"));
    }

    #[test]
    fn try_map_all_ok_summary() {
        let (out, report) = par_try_map((0..5).collect(), &TryMapOptions::default(), |&i: &i32| {
            Ok(i + 1)
        });
        assert_eq!(out.into_iter().flatten().sum::<i32>(), 15);
        assert!(report.all_ok());
        assert!(report.summary().contains("5/5 corners ok"));
    }

    #[test]
    fn zero_corner_deadline_times_every_corner_out() {
        use crate::analysis::budget::{BudgetTracker, Phase, RunBudget};
        let opts = TryMapOptions {
            corner_deadline: Some(Duration::ZERO),
            ..TryMapOptions::default()
        };
        // The closure polls the corner token the way a budgeted solve
        // does; a `Duration::ZERO` slice must cancel it before any work.
        let (out, report) = par_try_map((0..6).collect(), &opts, |&i: &i32| {
            let tracker = BudgetTracker::new(&RunBudget::unlimited(), Phase::DcOperatingPoint);
            tracker.check()?;
            Ok(i)
        });
        assert!(out.iter().all(Option::is_none));
        assert_eq!(report.succeeded, 0);
        assert_eq!(report.failures.len(), 6);
        for fail in &report.failures {
            assert_eq!(fail.attempts, 1, "timeouts must not be retried");
            assert!(
                matches!(&fail.failure, SweepFailure::TimedOut { error, .. }
                    if error.is_deadline_exceeded()),
                "{}",
                fail.failure
            );
        }
        assert!(
            report.summary().contains("6 timed out"),
            "{}",
            report.summary()
        );
    }

    #[test]
    fn untrusted_corners_are_quarantined_without_retry() {
        let calls = AtomicUsize::new(0);
        let opts = TryMapOptions {
            retries: 3,
            ..TryMapOptions::default()
        };
        let untrusted = || Error::UntrustedSolution {
            backward_error: 1.0e-2,
            tolerance: 1.0e-8,
            refinement_steps: 1,
            cond_estimate: 1.0e16,
        };
        let (out, report) = par_try_map((0..4).collect(), &opts, |&i: &i32| {
            calls.fetch_add(1, Ordering::SeqCst);
            if i == 2 {
                return Err(untrusted());
            }
            Ok(i)
        });
        assert_eq!(out, vec![Some(0), Some(1), None, Some(3)]);
        assert_eq!(report.quarantined(), 1);
        // Despite `retries: 3`, the quarantined corner ran exactly once.
        assert_eq!(calls.load(Ordering::SeqCst), 4);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].index, 2);
        assert_eq!(report.failures[0].attempts, 1);
        assert!(matches!(
            &report.failures[0].failure,
            SweepFailure::Untrusted { error } if error.is_untrusted_solution()
        ));
        assert!(
            report.failures[0]
                .failure
                .to_string()
                .starts_with("quarantined:"),
            "{}",
            report.failures[0].failure
        );
        assert!(
            report.summary().contains("1 quarantined"),
            "{}",
            report.summary()
        );
    }

    #[test]
    fn pre_triggered_cancel_handle_cancels_every_corner_without_running() {
        let handle = CancelHandle::new();
        handle.cancel();
        let opts = TryMapOptions {
            cancel: Some(handle),
            retries: 2,
            ..TryMapOptions::default()
        };
        let calls = AtomicUsize::new(0);
        let (out, report) = par_try_map((0..5).collect(), &opts, |&i: &i32| {
            calls.fetch_add(1, Ordering::SeqCst);
            Ok(i)
        });
        assert!(out.iter().all(Option::is_none));
        assert_eq!(calls.load(Ordering::SeqCst), 0, "no corner may run");
        assert_eq!(report.cancelled(), 5);
        for fail in &report.failures {
            assert_eq!(fail.attempts, 0);
            assert!(matches!(
                fail.failure,
                SweepFailure::Cancelled { error: None, .. }
            ));
            assert_eq!(fail.failure.to_string(), "cancelled before start");
        }
        assert!(
            report.summary().contains("5 cancelled"),
            "{}",
            report.summary()
        );
    }

    #[test]
    fn remote_cancel_mid_solve_is_distinguished_from_timeout() {
        use crate::analysis::budget::{BudgetTracker, Phase, RunBudget};
        let handle = CancelHandle::new();
        let opts = TryMapOptions {
            cancel: Some(handle.clone()),
            max_workers: Some(2),
            ..TryMapOptions::default()
        };
        // Each corner polls its corner token the way budgeted solves do;
        // the handle fires from outside the sweep threads after the first
        // poll, so every corner is interrupted mid-"solve".
        let (out, report) =
            par_try_map((0..4).collect(), &opts, |&i: &i32| -> Result<i32, Error> {
                let tracker = BudgetTracker::new(&RunBudget::unlimited(), Phase::DcSweep);
                handle.cancel();
                loop {
                    tracker.check()?;
                    let _ = i;
                }
            });
        assert!(out.iter().all(Option::is_none));
        assert_eq!(report.succeeded, 0);
        assert!(report.cancelled() >= 1, "{}", report.summary());
        for fail in &report.failures {
            match &fail.failure {
                SweepFailure::Cancelled { error, .. } => {
                    if fail.attempts > 0 {
                        assert!(error.as_ref().is_some_and(Error::is_deadline_exceeded));
                        assert!(fail.failure.to_string().starts_with("cancelled after"));
                    }
                }
                other => panic!("expected cancelled, got {other}"),
            }
        }
        assert!(
            report.summary().contains("cancelled"),
            "{}",
            report.summary()
        );
    }

    #[test]
    fn corner_deadline_without_handle_still_reports_timeout() {
        // Regression guard: wiring `cancel` must not reclassify plain
        // deadline expiries as cancellations.
        use crate::analysis::budget::{BudgetTracker, Phase, RunBudget};
        let opts = TryMapOptions {
            corner_deadline: Some(Duration::ZERO),
            cancel: Some(CancelHandle::new()),
            ..TryMapOptions::default()
        };
        let (_, report) = par_try_map(vec![0], &opts, |&i: &i32| {
            let tracker = BudgetTracker::new(&RunBudget::unlimited(), Phase::DcSweep);
            tracker.check()?;
            Ok(i)
        });
        assert_eq!(report.failures.len(), 1);
        assert!(
            matches!(report.failures[0].failure, SweepFailure::TimedOut { .. }),
            "{}",
            report.failures[0].failure
        );
    }

    #[test]
    fn max_workers_pins_parallelism_without_changing_results() {
        let serial = TryMapOptions {
            max_workers: Some(1),
            ..TryMapOptions::default()
        };
        let wide = TryMapOptions {
            max_workers: Some(4),
            ..TryMapOptions::default()
        };
        let f = |&i: &i32| -> Result<i32, Error> { Ok(i * 3) };
        let (a, _) = par_try_map((0..32).collect(), &serial, f);
        let (b, _) = par_try_map((0..32).collect(), &wide, f);
        assert_eq!(a, b);
    }

    #[test]
    fn grids() {
        assert_eq!(
            grid2(&[1, 2], &['a', 'b']),
            vec![(1, 'a'), (1, 'b'), (2, 'a'), (2, 'b')]
        );
        assert_eq!(grid3(&[1], &[2], &[3, 4]), vec![(1, 2, 3), (1, 2, 4)]);
    }

    #[test]
    fn linspace_endpoints() {
        let v = linspace(0.0, 1.0, 5);
        assert_eq!(v, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(linspace(2.0, 3.0, 1), vec![2.0]);
        assert!(linspace(0.0, 1.0, 0).is_empty());
    }
}
