//! Structural pre-flight diagnostics on the assembled MNA pattern.
//!
//! Assembles the system once at the zero vector with `gmin = 0` — so the
//! blanket conductance cannot mask a DC-floating node — and scans the
//! resulting pattern for defects that would make the first factorization
//! fail or its numbers meaningless. Findings name the offending node or
//! branch element, instead of the bare `SingularMatrix { column }` that
//! otherwise surfaces from deep inside the LU kernel.
//!
//! Two entry points with different contracts:
//!
//! * [`preflight`] never fails: it returns every finding so the DC
//!   recovery ladder can attach them to its [`ConvergenceReport`] as
//!   diagnostics. The ladder's gmin rungs *cure* a DC-floating node (a
//!   capacitor-only island is pinned by the baseline gmin), so fatal
//!   findings here do not imply the solve will fail;
//! * [`assert_preflight`] is the strict form for callers that want broken
//!   netlists rejected up front with [`Error::PreflightFailed`], before
//!   any factorization runs.
//!
//! [`ConvergenceReport`]: super::dc::ConvergenceReport

use super::mna::{Assembler, EvalMode};
use crate::error::Error;
use crate::linalg::Triplets;
use crate::netlist::Circuit;

/// Dynamic range of entry magnitudes above which [`preflight`] emits an
/// [`PreflightFinding::ExtremeScaling`] warning. Double precision carries
/// ~16 decimal digits; a pattern spanning more than 14 decades leaves the
/// small entries with no trustworthy bits after elimination against the
/// large ones.
pub const SCALING_RATIO_WARN: f64 = 1.0e14;

/// One structural defect (or suspicious feature) of the assembled pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum PreflightFinding {
    /// The unknown has neither an equation row nor a column entry: no
    /// element drives it and none senses it. With `gmin = 0` the matrix is
    /// structurally singular at this index. Fatal.
    FloatingNode {
        /// Index of the unknown in the MNA vector.
        unknown: usize,
        /// Human-readable name (`node \`mid\``, `branch current of \`V1\``).
        name: String,
    },
    /// The unknown's equation row is structurally empty while its column
    /// is not: nothing constrains it even though other equations depend on
    /// it. Fatal.
    EmptyRow {
        /// Index of the unknown in the MNA vector.
        unknown: usize,
        /// Human-readable name of the unknown.
        name: String,
    },
    /// The unknown appears in no equation while its own row is non-empty:
    /// the matrix has a structurally zero column. Fatal.
    EmptyColumn {
        /// Index of the unknown in the MNA vector.
        unknown: usize,
        /// Human-readable name of the unknown.
        name: String,
    },
    /// A node row with entries but no structural diagonal and no coupling
    /// to any branch equation: the node's voltage is defined only through
    /// other node voltages (e.g. a bare controlled-source mesh). Often
    /// still solvable — reported as a warning. Node rows coupled to a
    /// voltage-source branch are *not* flagged; a missing diagonal is
    /// normal there.
    ZeroDiagonal {
        /// Index of the unknown in the MNA vector.
        unknown: usize,
        /// Human-readable name of the unknown.
        name: String,
    },
    /// Entry magnitudes span more than [`SCALING_RATIO_WARN`]: elimination
    /// will shred the low-order bits of the small entries. Warning.
    ExtremeScaling {
        /// Largest entry magnitude in the assembled pattern.
        max_abs: f64,
        /// Smallest nonzero entry magnitude.
        min_abs: f64,
    },
}

impl PreflightFinding {
    /// Whether this finding makes the `gmin = 0` system structurally
    /// singular (empty row or column). Warnings return `false`.
    #[must_use]
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            PreflightFinding::FloatingNode { .. }
                | PreflightFinding::EmptyRow { .. }
                | PreflightFinding::EmptyColumn { .. }
        )
    }
}

impl std::fmt::Display for PreflightFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PreflightFinding::FloatingNode { name, .. } => {
                write!(
                    f,
                    "{name} is floating: no element drives or senses it at dc"
                )
            }
            PreflightFinding::EmptyRow { name, .. } => {
                write!(f, "{name} has a structurally empty equation row")
            }
            PreflightFinding::EmptyColumn { name, .. } => {
                write!(
                    f,
                    "{name} appears in no equation (structurally zero column)"
                )
            }
            PreflightFinding::ZeroDiagonal { name, .. } => {
                write!(
                    f,
                    "{name} has no structural diagonal and no branch coupling"
                )
            }
            PreflightFinding::ExtremeScaling { max_abs, min_abs } => {
                write!(
                    f,
                    "entry magnitudes span {:.1} decades ({max_abs:.3e} vs {min_abs:.3e})",
                    (max_abs / min_abs).log10()
                )
            }
        }
    }
}

/// Outcome of a pre-flight scan: every finding, fatal and warning.
#[derive(Debug, Clone, PartialEq, Default)]
#[must_use]
pub struct PreflightReport {
    /// Every finding, in unknown order (pattern-wide warnings last).
    pub findings: Vec<PreflightFinding>,
    /// Dimension of the scanned system.
    pub dim: usize,
}

impl PreflightReport {
    /// Whether the scan found nothing at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Whether any finding is fatal (structurally singular at `gmin = 0`).
    #[must_use]
    pub fn has_fatal(&self) -> bool {
        self.findings.iter().any(PreflightFinding::is_fatal)
    }

    /// The fatal findings only.
    pub fn fatal(&self) -> impl Iterator<Item = &PreflightFinding> {
        self.findings.iter().filter(|f| f.is_fatal())
    }

    /// Every finding rendered to its display string.
    #[must_use]
    pub fn messages(&self) -> Vec<String> {
        self.findings.iter().map(ToString::to_string).collect()
    }
}

/// Human-readable label for MNA unknown `idx`: the node's name for node
/// voltages, the owning element's name for branch currents.
fn unknown_label(circuit: &Circuit, idx: usize) -> String {
    let n_nodes = circuit.node_unknowns();
    if idx < n_nodes {
        circuit
            .node_ids()
            .find(|id| id.unknown() == Some(idx))
            .map(|id| format!("node `{}`", circuit.node_name(id)))
            .unwrap_or_else(|| format!("unknown {idx}"))
    } else {
        match circuit.branch_elements().get(idx - n_nodes) {
            Some(&e_idx) => format!("branch current of `{}`", circuit.element_slice()[e_idx].0),
            None => format!("unknown {idx}"),
        }
    }
}

/// Scans the assembled MNA pattern for structural defects. Never fails;
/// see the module docs for the fatal/warning split.
pub fn preflight(circuit: &Circuit) -> PreflightReport {
    let dim = circuit.dim();
    let n_nodes = circuit.node_unknowns();
    let mut assembler = Assembler::new(circuit);
    let mut triplets = Triplets::new(dim);
    let mut rhs = Vec::new();
    let x = vec![0.0; dim];
    // gmin = 0: the blanket conductance would put a value on every node
    // diagonal and hide exactly the defects this scan exists to find.
    assembler.assemble(&x, &EvalMode::dc(0.0), &mut triplets, &mut rhs);

    let mut row_nnz = vec![0usize; dim];
    let mut col_nnz = vec![0usize; dim];
    let mut has_diag = vec![false; dim];
    let mut branch_coupled = vec![false; dim];
    let mut max_abs = 0.0f64;
    let mut min_abs = f64::INFINITY;
    for &(r, c, v) in triplets.entries() {
        if v == 0.0 {
            continue;
        }
        row_nnz[r] += 1;
        col_nnz[c] += 1;
        if r == c {
            has_diag[r] = true;
        }
        if c >= n_nodes {
            branch_coupled[r] = true;
        }
        let a = v.abs();
        max_abs = max_abs.max(a);
        min_abs = min_abs.min(a);
    }

    let mut findings = Vec::new();
    for i in 0..dim {
        let finding = match (row_nnz[i] == 0, col_nnz[i] == 0) {
            (true, true) => Some(PreflightFinding::FloatingNode {
                unknown: i,
                name: unknown_label(circuit, i),
            }),
            (true, false) => Some(PreflightFinding::EmptyRow {
                unknown: i,
                name: unknown_label(circuit, i),
            }),
            (false, true) => Some(PreflightFinding::EmptyColumn {
                unknown: i,
                name: unknown_label(circuit, i),
            }),
            (false, false) => {
                if i < n_nodes && !has_diag[i] && !branch_coupled[i] {
                    Some(PreflightFinding::ZeroDiagonal {
                        unknown: i,
                        name: unknown_label(circuit, i),
                    })
                } else {
                    None
                }
            }
        };
        findings.extend(finding);
    }
    if min_abs.is_finite() && max_abs / min_abs > SCALING_RATIO_WARN {
        findings.push(PreflightFinding::ExtremeScaling { max_abs, min_abs });
    }
    PreflightReport { findings, dim }
}

/// Strict pre-flight: rejects circuits with fatal structural findings.
///
/// # Errors
///
/// Returns [`Error::PreflightFailed`] listing every fatal finding (with
/// named nodes) when the `gmin = 0` pattern is structurally singular.
/// Warnings alone do not fail; they are in the returned report.
pub fn assert_preflight(circuit: &Circuit) -> Result<PreflightReport, Error> {
    let report = preflight(circuit);
    if report.has_fatal() {
        return Err(Error::PreflightFailed {
            findings: report.fatal().map(ToString::to_string).collect(),
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::dc::{operating_point, DcOptions};
    use crate::netlist::Netlist;

    #[test]
    fn healthy_divider_is_clean() {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.vdc("V1", vin, Netlist::GROUND, 3.3).unwrap();
        nl.resistor("R1", vin, out, 1.0e3).unwrap();
        nl.resistor("R2", out, Netlist::GROUND, 2.0e3).unwrap();
        let circuit = nl.compile().unwrap();
        let report = assert_preflight(&circuit).unwrap();
        assert!(report.is_clean(), "{:?}", report.findings);
    }

    #[test]
    fn floating_cap_node_is_named_before_any_factorization() {
        // A node held only by a capacitor: floating at dc. The strict
        // entry point must reject it *by name*; the recovery ladder still
        // solves it (the baseline gmin pins the node — see the
        // `floating_node_is_pinned_not_fatal` torture test).
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let mid = nl.node("mid");
        nl.vdc("V1", a, Netlist::GROUND, 1.0).unwrap();
        nl.resistor("R1", a, Netlist::GROUND, 1.0e3).unwrap();
        nl.capacitor("C1", mid, Netlist::GROUND, 1.0e-12).unwrap();
        let circuit = nl.compile().unwrap();

        let err = assert_preflight(&circuit).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("pre-flight structural check failed"), "{msg}");
        assert!(msg.contains("node `mid`"), "{msg}");
        assert!(msg.contains("floating"), "{msg}");

        // The non-strict path records the same finding as a diagnostic and
        // still converges.
        let op = operating_point(&circuit, &DcOptions::default()).unwrap();
        assert!(
            op.report()
                .preflight
                .iter()
                .any(|m| m.contains("node `mid`")),
            "{:?}",
            op.report().preflight
        );
    }

    #[test]
    fn current_source_into_open_node_is_fatal() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let open = nl.node("open");
        nl.vdc("V1", a, Netlist::GROUND, 1.0).unwrap();
        nl.resistor("R1", a, Netlist::GROUND, 1.0e3).unwrap();
        nl.idc("I1", open, Netlist::GROUND, 1.0e-3).unwrap();
        let circuit = nl.compile().unwrap();
        let err = assert_preflight(&circuit).unwrap_err();
        assert!(err.to_string().contains("node `open`"), "{err}");
    }

    #[test]
    fn vsource_only_node_is_not_flagged() {
        // A node defined solely by a voltage-source branch has no
        // structural diagonal — that is normal MNA, not a defect.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vdc("V1", a, Netlist::GROUND, 1.0).unwrap();
        nl.resistor("R1", a, Netlist::GROUND, 1.0e3).unwrap();
        let circuit = nl.compile().unwrap();
        assert!(preflight(&circuit).is_clean());
    }

    #[test]
    fn wild_scaling_warns_but_does_not_fail() {
        // Sixteen decades between conductances: 1e-15 Ω wire vs 10 GΩ
        // bleed. Solvable, but elimination loses the small entries.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vdc("V1", a, Netlist::GROUND, 1.0).unwrap();
        nl.resistor("RW", a, b, 1.0e-15).unwrap();
        nl.resistor("RB", b, Netlist::GROUND, 1.0e10).unwrap();
        let circuit = nl.compile().unwrap();
        let report = assert_preflight(&circuit).unwrap();
        assert!(!report.is_clean());
        assert!(!report.has_fatal());
        assert!(
            matches!(
                report.findings.as_slice(),
                [PreflightFinding::ExtremeScaling { .. }]
            ),
            "{:?}",
            report.findings
        );
        assert!(report.messages()[0].contains("decades"));
    }
}
