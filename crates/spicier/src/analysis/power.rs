//! DC power accounting.
//!
//! Computes each element's branch currents and dissipated power at an
//! operating point, plus the Tellegen balance (power supplied by sources
//! equals power dissipated in the rest of the circuit) as a built-in
//! sanity check.

use super::dc::DcSolution;
use crate::netlist::{Circuit, Element, NodeId};

/// One element's share of the power budget.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementPower {
    /// Element name.
    pub name: String,
    /// Power absorbed by the element, watts (negative = delivering).
    pub power: f64,
    /// Whether the element is an independent source.
    pub is_source: bool,
}

/// Power report at a DC operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// Per-element powers, in netlist order.
    pub per_element: Vec<ElementPower>,
    /// Total power dissipated by non-source elements, watts.
    pub dissipated: f64,
    /// Total power delivered by independent sources, watts.
    pub supplied: f64,
}

impl PowerReport {
    /// Power of one element by name.
    pub fn of(&self, name: &str) -> Option<f64> {
        self.per_element
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.power)
    }

    /// Net power of all elements whose name starts with `prefix`
    /// (sources included — use
    /// [`dissipation_of_prefix`](Self::dissipation_of_prefix) for the
    /// heat budget).
    pub fn of_prefix(&self, prefix: &str) -> f64 {
        self.per_element
            .iter()
            .filter(|e| e.name.starts_with(prefix))
            .map(|e| e.power)
            .sum()
    }

    /// Dissipation of all *non-source* elements under `prefix` — the
    /// extra heat a cell instance (e.g. a detector) adds.
    pub fn dissipation_of_prefix(&self, prefix: &str) -> f64 {
        self.per_element
            .iter()
            .filter(|e| e.name.starts_with(prefix) && !e.is_source)
            .map(|e| e.power)
            .sum()
    }

    /// Tellegen imbalance `|supplied − dissipated|` (should be ≈ 0).
    pub fn imbalance(&self) -> f64 {
        (self.supplied - self.dissipated).abs()
    }
}

/// Computes the power report for `op` on `circuit`.
pub fn power_report(circuit: &Circuit, op: &DcSolution) -> PowerReport {
    let v = |node: NodeId| op.voltage(node);
    let mut per_element = Vec::new();
    let mut dissipated = 0.0;
    let mut supplied = 0.0;
    // Branch currents are ordered by the circuit's branch elements.
    let mut branch_iter = 0usize;
    let branch_elements = circuit.branch_elements();
    let elements = circuit.element_slice();
    for (e_idx, (name, element)) in elements.iter().enumerate() {
        let has_branch = branch_elements.get(branch_iter) == Some(&e_idx);
        let branch_current = if has_branch {
            let i = op.branch_current(branch_iter);
            branch_iter += 1;
            Some(i)
        } else {
            None
        };
        let power = match element {
            Element::Resistor { p, n, value } => {
                let dv = v(*p) - v(*n);
                dv * dv / value
            }
            Element::Capacitor { .. } => 0.0,
            Element::Inductor { .. } => 0.0, // short in DC: no dissipation
            Element::VoltageSource { p, n, .. } => {
                // Branch current flows p → n inside the source; power
                // delivered = −v·i (SPICE sign convention: a source
                // delivering power has negative dissipation).
                let i = branch_current.expect("voltage source has a branch");
                (v(*p) - v(*n)) * i
            }
            Element::CurrentSource { p, n, wave } => {
                let i = wave.dc_value();
                (v(*p) - v(*n)) * i
            }
            Element::Diode {
                anode,
                cathode,
                model,
            } => {
                let vd = v(*anode) - v(*cathode);
                model.eval(vd).id * vd
            }
            Element::Bjt {
                collector,
                base,
                emitter,
                model,
            } => {
                let s = model.polarity.sign();
                let vbe = s * (v(*base) - v(*emitter));
                let vbc = s * (v(*base) - v(*collector));
                let eval = model.eval(vbe, vbc);
                let ic = s * eval.ic;
                let ib = s * eval.ib;
                let ie = -(ic + ib);
                v(*collector) * ic + v(*base) * ib + v(*emitter) * ie
            }
            Element::Vcvs { p, n, .. } => {
                let i = branch_current.expect("vcvs has a branch");
                (v(*p) - v(*n)) * i
            }
            Element::Vccs { p, n, cp, cn, gm } => {
                let i = gm * (v(*cp) - v(*cn));
                (v(*p) - v(*n)) * i
            }
        };
        let is_source = matches!(
            element,
            Element::VoltageSource { .. } | Element::CurrentSource { .. }
        );
        if is_source {
            supplied += -power;
        } else {
            dissipated += power;
        }
        per_element.push(ElementPower {
            name: name.clone(),
            power,
            is_source,
        });
    }
    PowerReport {
        per_element,
        dissipated,
        supplied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::dc::{operating_point, DcOptions};
    use crate::netlist::Netlist;

    #[test]
    fn divider_power_matches_v_squared_over_r() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vdc("V1", a, Netlist::GROUND, 3.0).unwrap();
        nl.resistor("R1", a, b, 1.0e3).unwrap();
        nl.resistor("R2", b, Netlist::GROUND, 2.0e3).unwrap();
        let circuit = nl.compile().unwrap();
        let op = operating_point(&circuit, &DcOptions::default()).unwrap();
        let report = power_report(&circuit, &op);
        let total = 9.0 / 3.0e3; // V²/(R1+R2) = 3 mW
        assert!((report.dissipated - total).abs() < 1e-9);
        assert!((report.supplied - total).abs() < 1e-9);
        assert!(report.imbalance() < 1e-9);
        assert!((report.of("R1").unwrap() - 1.0e-3).abs() < 1e-9);
        assert!((report.of("R2").unwrap() - 2.0e-3).abs() < 1e-9);
    }

    #[test]
    fn tellegen_holds_with_bjts() {
        let mut nl = Netlist::new();
        let vcc = nl.node("vcc");
        let b = nl.node("b");
        let c = nl.node("c");
        let e = nl.node("e");
        nl.vdc("VCC", vcc, Netlist::GROUND, 3.3).unwrap();
        nl.vdc("VB", b, Netlist::GROUND, 1.3).unwrap();
        nl.resistor("RC", vcc, c, 1.0e3).unwrap();
        nl.resistor("RE", e, Netlist::GROUND, 1.0e3).unwrap();
        nl.bjt("Q1", c, b, e, crate::devices::BjtModel::fast_npn())
            .unwrap();
        let circuit = nl.compile().unwrap();
        let op = operating_point(&circuit, &DcOptions::default()).unwrap();
        let report = power_report(&circuit, &op);
        // gmin leakage bounds the imbalance, not exactness of the report.
        assert!(
            report.imbalance() < 1e-6 * report.supplied.abs().max(1e-9),
            "supplied {} vs dissipated {}",
            report.supplied,
            report.dissipated
        );
        // The transistor dissipates something sensible.
        let pq = report.of("Q1").unwrap();
        assert!(pq > 0.0 && pq < 5.0e-3, "Q1 power {pq}");
    }

    #[test]
    fn prefix_aggregation() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vdc("V1", a, Netlist::GROUND, 1.0).unwrap();
        nl.resistor("X.R1", a, Netlist::GROUND, 1.0e3).unwrap();
        nl.resistor("X.R2", a, Netlist::GROUND, 1.0e3).unwrap();
        nl.resistor("Y.R1", a, Netlist::GROUND, 1.0e3).unwrap();
        let circuit = nl.compile().unwrap();
        let op = operating_point(&circuit, &DcOptions::default()).unwrap();
        let report = power_report(&circuit, &op);
        assert!((report.of_prefix("X.") - 2.0e-3).abs() < 1e-9);
        assert!((report.of_prefix("Y.") - 1.0e-3).abs() < 1e-9);
    }
}
