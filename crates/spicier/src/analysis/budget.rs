//! Budgeted execution: wall-clock deadlines, iteration caps, and
//! cooperative cancellation for every analysis entry point.
//!
//! A [`RunBudget`] rides inside each analysis' options struct. Every
//! public entry point (`operating_point`, `sweep_vsource`, the transient
//! family, `ac_analysis`, `noise_analysis`) opens a [`BudgetTracker`]
//! when it starts and consults it at each unit of work: every Newton
//! iteration of every recovery-ladder rung, every transient timestep
//! attempt, every AC/noise frequency point, every DC sweep point. A
//! violation surfaces as [`Error::DeadlineExceeded`], which the salvage
//! and retry machinery treats as **non-retriable** — the budget is spent,
//! so burning the remainder on ladder escalation or retries would defeat
//! the point.
//!
//! Cancellation is cooperative: a [`CancelToken`] is a cheap shared flag
//! (optionally with a fixed expiry instant) that long solves poll between
//! iterations. Sweep workers additionally install a per-corner token in
//! thread-local storage ([`with_corner_token`]), so a corner's deadline
//! reaches every solve the corner performs even when the corner's closure
//! never threads a `RunBudget` explicitly.

use crate::error::Error;
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which analysis a budget violation interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// DC operating point (recovery ladder).
    DcOperatingPoint,
    /// DC source sweep (`sweep_vsource`).
    DcSweep,
    /// Transient analysis (adaptive-timestep loop).
    Transient,
    /// Small-signal AC analysis.
    Ac,
    /// Small-signal noise analysis.
    Noise,
}

impl Phase {
    /// Short label used in error messages and failure CSVs.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Phase::DcOperatingPoint => "dc-operating-point",
            Phase::DcSweep => "dc-sweep",
            Phase::Transient => "transient",
            Phase::Ac => "ac",
            Phase::Noise => "noise",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[derive(Debug, Default)]
struct TokenInner {
    cancelled: AtomicBool,
    expires_at: Option<Instant>,
    /// Parent token, when this token was derived with [`CancelToken::child`]
    /// or [`CancelToken::child_with_deadline`]: cancelling the parent
    /// cancels every descendant, while a child's own deadline or explicit
    /// cancel never propagates upward.
    parent: Option<Arc<TokenInner>>,
}

impl TokenInner {
    /// Whether an explicit `cancel()` landed on this token or any ancestor.
    fn flag_set(&self) -> bool {
        if self.cancelled.load(Ordering::Acquire) {
            return true;
        }
        self.parent.as_deref().is_some_and(TokenInner::flag_set)
    }

    /// Whether this token's expiry, or any ancestor's, has passed.
    fn expired(&self) -> bool {
        if self.expires_at.is_some_and(|at| Instant::now() >= at) {
            return true;
        }
        self.parent.as_deref().is_some_and(TokenInner::expired)
    }
}

/// Cooperative cancellation handle, cheap to clone and share across
/// threads. Optionally carries a fixed expiry instant, which is how
/// per-corner deadlines work without a watchdog thread: the token is
/// "cancelled" the moment `Instant::now()` passes the expiry, and the
/// next budget check inside the solve observes it.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl CancelToken {
    /// A fresh, un-cancelled token with no expiry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that auto-cancels `slice` from now. `Duration::ZERO` (or a
    /// slice too large to represent) yields a token that is expired — and
    /// therefore cancelled — immediately.
    #[must_use]
    pub fn with_deadline(slice: Duration) -> Self {
        Self {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                expires_at: Some(deadline_instant(slice)),
                parent: None,
            }),
        }
    }

    /// Derives a child token: cancelled whenever `self` is, but with its
    /// own independent flag — cancelling the child leaves `self` (and any
    /// sibling) untouched.
    #[must_use]
    pub fn child(&self) -> CancelToken {
        Self {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                expires_at: None,
                parent: Some(self.inner.clone()),
            }),
        }
    }

    /// Derives a child token that additionally auto-cancels `slice` from
    /// now — the shape every per-corner deadline under an external
    /// [`CancelHandle`] takes.
    #[must_use]
    pub fn child_with_deadline(&self, slice: Duration) -> CancelToken {
        Self {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                expires_at: Some(deadline_instant(slice)),
                parent: Some(self.inner.clone()),
            }),
        }
    }

    /// Requests cancellation. Every clone of this token — and every child
    /// derived from it — observes it.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation was requested or the expiry (if any) passed,
    /// on this token or any ancestor.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner.flag_set() || self.inner.expired()
    }

    /// Whether an explicit [`cancel`](Self::cancel) call landed on this
    /// token or an ancestor — distinguishes remote cancellation from a
    /// deadline quietly expiring, which degraded-outcome reporting needs.
    #[must_use]
    pub fn was_cancelled_explicitly(&self) -> bool {
        self.inner.flag_set()
    }
}

fn deadline_instant(slice: Duration) -> Instant {
    Instant::now()
        .checked_add(slice)
        .unwrap_or_else(Instant::now)
}

/// Cloneable, externally triggerable cancellation source for a sweep or a
/// served request: the promotion of the sweep-internal corner-deadline
/// token into a public API.
///
/// A `CancelHandle` lives *outside* the threads doing the work — a daemon
/// connection handler, a drain loop, a test — and is wired in through
/// `TryMapOptions::cancel` or by deriving per-corner tokens with
/// [`child_with_deadline`](Self::child_with_deadline) and installing them
/// via [`with_corner_token`]. Calling [`cancel`](Self::cancel) stops every
/// solve running under a derived token at its next budget check, from any
/// thread, fixing the previous "deadline-only" limitation of
/// `par_try_map_with`.
#[derive(Debug, Clone, Default)]
pub struct CancelHandle {
    token: CancelToken,
}

impl CancelHandle {
    /// A fresh, untriggered handle.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Triggers cancellation: every token derived from this handle is
    /// cancelled at its next poll.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Whether [`cancel`](Self::cancel) was called on any clone.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.token.was_cancelled_explicitly()
    }

    /// The handle's root token, for callers that want to install it
    /// directly with [`with_corner_token`].
    #[must_use]
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Derives a corner token tied to this handle with no extra deadline.
    #[must_use]
    pub fn child(&self) -> CancelToken {
        self.token.child()
    }

    /// Derives a corner token tied to this handle that also auto-cancels
    /// after `slice`.
    #[must_use]
    pub fn child_with_deadline(&self, slice: Duration) -> CancelToken {
        self.token.child_with_deadline(slice)
    }
}

impl PartialEq for CancelHandle {
    fn eq(&self, other: &Self) -> bool {
        self.token == other.token
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// Execution budget for one analysis call. The default is unlimited —
/// every limit is opt-in, so existing callers pay only a flag check per
/// Newton iteration.
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    /// Wall-clock deadline for the whole call, measured from entry.
    pub deadline: Option<Duration>,
    /// Cap on total Newton iterations across the call (summed over every
    /// ladder rung, homotopy step, and transient timestep).
    pub max_newton_iterations: Option<usize>,
    /// Cap on transient timestep attempts, accepted and rejected alike.
    pub max_timesteps: Option<usize>,
    /// Cooperative cancellation handle polled between iterations.
    pub cancel: CancelToken,
}

impl PartialEq for RunBudget {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline
            && self.max_newton_iterations == other.max_newton_iterations
            && self.max_timesteps == other.max_timesteps
            && self.cancel == other.cancel
    }
}

impl RunBudget {
    /// An unlimited budget (same as `Default`).
    #[must_use]
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Sets the wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the total Newton-iteration cap.
    #[must_use]
    pub fn with_max_newton_iterations(mut self, cap: usize) -> Self {
        self.max_newton_iterations = Some(cap);
        self
    }

    /// Sets the transient timestep-attempt cap.
    #[must_use]
    pub fn with_max_timesteps(mut self, cap: usize) -> Self {
        self.max_timesteps = Some(cap);
        self
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Whether no limit of any kind is set (the cancel token may still
    /// fire; this only reflects the declarative caps).
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_newton_iterations.is_none()
            && self.max_timesteps.is_none()
    }
}

thread_local! {
    static CORNER_TOKEN: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Runs `f` with `token` installed as this thread's corner token. Budget
/// checks inside any analysis `f` performs consult the token in addition
/// to the analysis' own [`RunBudget`], which is how sweep workers impose
/// per-corner deadlines on closures that never mention budgets. Nested
/// installs shadow (and then restore) the outer token.
pub fn with_corner_token<R>(token: &CancelToken, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<CancelToken>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CORNER_TOKEN.with(|t| *t.borrow_mut() = self.0.take());
        }
    }
    let prev = CORNER_TOKEN.with(|t| t.borrow_mut().replace(token.clone()));
    let _restore = Restore(prev);
    f()
}

fn corner_token_cancelled() -> bool {
    CORNER_TOKEN.with(|t| t.borrow().as_ref().is_some_and(CancelToken::is_cancelled))
}

/// Per-call budget accounting, created at each public analysis entry
/// point and threaded down to the Newton loops.
#[derive(Debug)]
pub(crate) struct BudgetTracker {
    budget: RunBudget,
    phase: Phase,
    started: Instant,
    newton_iterations: usize,
    timesteps: usize,
    /// Fraction of the call's work completed, [0, 1]; maintained by the
    /// caller (ladder rung index, transient time, sweep point index) and
    /// embedded in the error so failures carry partial-progress info.
    progress: f64,
}

impl BudgetTracker {
    pub(crate) fn new(budget: &RunBudget, phase: Phase) -> Self {
        Self {
            budget: budget.clone(),
            phase,
            started: Instant::now(),
            newton_iterations: 0,
            timesteps: 0,
            progress: 0.0,
        }
    }

    /// Which analysis this tracker accounts for.
    pub(crate) fn phase(&self) -> Phase {
        self.phase
    }

    /// Records `n` completed Newton iterations.
    pub(crate) fn count_newton(&mut self, n: usize) {
        self.newton_iterations += n;
    }

    /// Records one transient timestep attempt (accepted or rejected).
    pub(crate) fn count_timestep(&mut self) {
        self.timesteps += 1;
    }

    /// Updates the progress fraction carried by budget errors.
    pub(crate) fn set_progress(&mut self, progress: f64) {
        self.progress = progress.clamp(0.0, 1.0);
    }

    /// Checks every limit; `Err(DeadlineExceeded)` when one is spent.
    pub(crate) fn check(&self) -> Result<(), Error> {
        if self.budget.cancel.is_cancelled() || corner_token_cancelled() {
            return Err(self.exceeded("cancelled-or-corner-deadline"));
        }
        if let Some(cap) = self.budget.max_newton_iterations {
            if self.newton_iterations >= cap {
                return Err(self.exceeded("newton-iteration-cap"));
            }
        }
        if let Some(cap) = self.budget.max_timesteps {
            if self.timesteps >= cap {
                return Err(self.exceeded("timestep-cap"));
            }
        }
        if let Some(deadline) = self.budget.deadline {
            if self.started.elapsed() >= deadline {
                return Err(self.exceeded("wall-clock-deadline"));
            }
        }
        Ok(())
    }

    fn exceeded(&self, limit: &str) -> Error {
        let elapsed = self.started.elapsed();
        if crate::telemetry::enabled() {
            // Budget consumption at the moment the limit tripped, then
            // the trajectory dump: a DeadlineExceeded must ship with the
            // events that burned the budget.
            crate::telemetry::event(
                "budget_exceeded",
                &[
                    ("phase", self.phase.label().into()),
                    ("limit", limit.into()),
                    ("elapsed_ms", (elapsed.as_millis() as i64).into()),
                    ("newton_iterations", self.newton_iterations.into()),
                    ("timesteps", self.timesteps.into()),
                    ("progress", self.progress.into()),
                ],
            );
            crate::telemetry::record_failure(
                "DeadlineExceeded",
                &format!(
                    "{} hit {limit} after {elapsed:.1?} at progress {:.2}",
                    self.phase.label(),
                    self.progress
                ),
            );
        }
        Error::DeadlineExceeded {
            phase: self.phase,
            elapsed,
            progress: self.progress,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        // Clones share the flag.
        let c = t.clone();
        assert!(c.is_cancelled());
    }

    #[test]
    fn zero_deadline_token_is_immediately_cancelled() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        let later = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!later.is_cancelled());
    }

    #[test]
    fn budget_equality_is_by_token_identity() {
        let a = RunBudget::default();
        let b = RunBudget::default();
        assert_ne!(a, b, "distinct tokens compare unequal");
        assert_eq!(a, a.clone());
        assert!(a.is_unlimited());
        assert!(!a
            .clone()
            .with_deadline(Duration::from_secs(1))
            .is_unlimited());
    }

    #[test]
    fn tracker_trips_on_each_limit() {
        let unlimited = BudgetTracker::new(&RunBudget::unlimited(), Phase::Transient);
        assert!(unlimited.check().is_ok());

        let mut t = BudgetTracker::new(
            &RunBudget::unlimited().with_max_newton_iterations(2),
            Phase::DcOperatingPoint,
        );
        assert!(t.check().is_ok());
        t.count_newton(2);
        let err = t.check().unwrap_err();
        assert!(err.is_deadline_exceeded(), "{err}");
        assert!(err.to_string().contains("dc-operating-point"), "{err}");

        let mut t = BudgetTracker::new(
            &RunBudget::unlimited().with_max_timesteps(1),
            Phase::Transient,
        );
        t.count_timestep();
        assert!(t.check().is_err());

        let t = BudgetTracker::new(
            &RunBudget::unlimited().with_deadline(Duration::ZERO),
            Phase::Ac,
        );
        assert!(t.check().is_err());

        let cancel = CancelToken::new();
        let t = BudgetTracker::new(
            &RunBudget::unlimited().with_cancel(cancel.clone()),
            Phase::Noise,
        );
        assert!(t.check().is_ok());
        cancel.cancel();
        assert!(t.check().is_err());
    }

    #[test]
    fn child_tokens_observe_parent_cancellation_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child();
        let sibling = parent.child();
        assert!(!child.is_cancelled());
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled(), "child cancel must not propagate up");
        assert!(!sibling.is_cancelled(), "or sideways");
        parent.cancel();
        assert!(sibling.is_cancelled());
        assert!(sibling.was_cancelled_explicitly());
    }

    #[test]
    fn child_deadline_expires_independently() {
        let parent = CancelToken::new();
        let child = parent.child_with_deadline(Duration::ZERO);
        assert!(child.is_cancelled(), "zero slice expires immediately");
        assert!(
            !child.was_cancelled_explicitly(),
            "expiry is not an explicit cancel"
        );
        assert!(!parent.is_cancelled());
        // Expired parent reaches the child too.
        let expired = CancelToken::with_deadline(Duration::ZERO);
        assert!(expired.child().is_cancelled());
    }

    #[test]
    fn cancel_handle_reaches_derived_corner_tokens() {
        let handle = CancelHandle::new();
        let corner = handle.child_with_deadline(Duration::from_secs(3600));
        assert!(!corner.is_cancelled());
        let remote = handle.clone();
        std::thread::spawn(move || remote.cancel()).join().unwrap();
        assert!(handle.is_cancelled());
        assert!(corner.is_cancelled());
        assert!(corner.was_cancelled_explicitly());
        // The tracker observes it through the TLS install, the way sweep
        // workers wire it.
        let tracker = BudgetTracker::new(&RunBudget::unlimited(), Phase::DcSweep);
        let err = with_corner_token(&corner, || tracker.check()).unwrap_err();
        assert!(err.is_deadline_exceeded());
    }

    #[test]
    fn corner_token_reaches_tracker_and_restores() {
        let tracker = BudgetTracker::new(&RunBudget::unlimited(), Phase::DcSweep);
        let expired = CancelToken::with_deadline(Duration::ZERO);
        let inside = with_corner_token(&expired, || tracker.check());
        let err = inside.unwrap_err();
        assert!(err.is_deadline_exceeded());
        if let Error::DeadlineExceeded { phase, .. } = err {
            assert_eq!(phase, Phase::DcSweep);
        }
        // Token uninstalled after the scope ends.
        assert!(tracker.check().is_ok());
    }
}
