//! Small-signal AC analysis.
//!
//! Linearizes every device at the DC operating point into conductance (`G`)
//! and capacitance (`C`) matrices, then solves `(G + jωC)·x = b` at each
//! frequency with a unit excitation on one designated source (all other
//! independent sources are zeroed, i.e. voltage sources become shorts and
//! current sources opens — standard AC semantics).
//!
//! Used here to characterize gate bandwidth and detector/comparator
//! frequency response, corroborating the paper's "works well below
//! at-speed frequencies" scoping.

use super::budget::{BudgetTracker, Phase, RunBudget};
use super::dc::{self, DcOptions};
use super::mna::{Assembler, SolveWorkspace};
use crate::error::Error;
use crate::linalg::complex::{Complex, ComplexDenseMatrix};
use crate::linalg::{SolveQuality, Triplets};
use crate::netlist::{Circuit, Element, NodeId};
use crate::telemetry::{self, TelemetrySummary};
use std::time::Instant;

/// Options for [`ac_analysis`].
#[derive(Debug, Clone, PartialEq)]
pub struct AcOptions {
    /// Name of the voltage or current source carrying the unit AC
    /// excitation.
    pub source: String,
    /// Frequencies to evaluate, hertz.
    pub freqs: Vec<f64>,
    /// DC operating-point options.
    pub dc: DcOptions,
    /// Execution budget for the whole AC call, including its operating
    /// point (this field governs the run, not `dc.budget`).
    pub budget: RunBudget,
}

impl AcOptions {
    /// Unit excitation on `source` over a log-spaced grid.
    pub fn new(source: &str, freqs: Vec<f64>) -> Self {
        Self {
            source: source.to_string(),
            freqs,
            dc: DcOptions::default(),
            budget: RunBudget::default(),
        }
    }
}

/// Log-spaced frequency grid, `points_per_decade` points per decade from
/// `f_start` to `f_stop` inclusive.
pub fn decade_freqs(f_start: f64, f_stop: f64, points_per_decade: usize) -> Vec<f64> {
    let mut out = Vec::new();
    if f_start <= 0.0 || f_stop < f_start || points_per_decade == 0 {
        return out;
    }
    let step = 1.0 / points_per_decade as f64;
    let mut exp = f_start.log10();
    let stop_exp = f_stop.log10();
    while exp <= stop_exp + 1e-12 {
        out.push(10.0f64.powf(exp));
        exp += step;
    }
    out
}

/// Result of an AC run: complex node responses per frequency.
#[derive(Debug, Clone)]
pub struct AcResult {
    freqs: Vec<f64>,
    n_nodes: usize,
    /// `data[k][i]` = response of unknown `i` at frequency `k`.
    data: Vec<Vec<Complex>>,
    quality: SolveQuality,
    telemetry: TelemetrySummary,
}

impl AcResult {
    /// The frequency grid, hertz.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Complex transfer to `node` at frequency index `k`.
    pub fn response(&self, node: NodeId, k: usize) -> Complex {
        match node.unknown() {
            Some(i) => self.data[k][i],
            None => Complex::ZERO,
        }
    }

    /// Magnitude (in dB) of the transfer to `node` across the grid.
    pub fn mag_db(&self, node: NodeId) -> Vec<f64> {
        (0..self.freqs.len())
            .map(|k| self.response(node, k).db())
            .collect()
    }

    /// Phase (degrees) across the grid.
    pub fn phase_deg(&self, node: NodeId) -> Vec<f64> {
        (0..self.freqs.len())
            .map(|k| self.response(node, k).phase_deg())
            .collect()
    }

    /// The −3 dB bandwidth of the transfer to `node` relative to its
    /// response at the lowest frequency (linear interpolation in
    /// log-magnitude). `None` when the response never drops 3 dB.
    pub fn bandwidth_3db(&self, node: NodeId) -> Option<f64> {
        let mags = self.mag_db(node);
        let reference = *mags.first()?;
        let target = reference - 3.0;
        for k in 1..mags.len() {
            if mags[k] <= target {
                let (m0, m1) = (mags[k - 1], mags[k]);
                let (f0, f1) = (self.freqs[k - 1], self.freqs[k]);
                if (m1 - m0).abs() < 1e-12 {
                    return Some(f1);
                }
                let t = (target - m0) / (m1 - m0);
                // Interpolate in log-frequency.
                return Some(10.0f64.powf(f0.log10() + t * (f1.log10() - f0.log10())));
            }
        }
        None
    }

    /// `n_nodes` accessor for diagnostics.
    pub fn node_unknowns(&self) -> usize {
        self.n_nodes
    }

    /// Worst linear-solve certification across the run: the pessimistic
    /// merge of the operating point's quality and every per-frequency
    /// complex solve.
    pub fn quality(&self) -> SolveQuality {
        self.quality
    }

    /// Telemetry rollup for this run (wall time, kernel counters from the
    /// operating point, worst certification across all frequency solves).
    pub fn telemetry(&self) -> &TelemetrySummary {
        &self.telemetry
    }
}

/// Runs the AC analysis.
///
/// # Errors
///
/// Fails when the operating point does not converge, the named source does
/// not exist, a frequency point is singular, or `opts.budget` is spent
/// ([`Error::DeadlineExceeded`] with phase `ac`).
pub fn ac_analysis(circuit: &Circuit, opts: &AcOptions) -> Result<AcResult, Error> {
    let started = Instant::now();
    let _span = telemetry::span("ac");
    let mut tracker = BudgetTracker::new(&opts.budget, Phase::Ac);
    // 1. Operating point.
    let mut assembler = Assembler::new(circuit);
    let mut ws = SolveWorkspace::for_circuit(circuit);
    let x_op = dc::operating_point_with(circuit, &opts.dc, &mut assembler, &mut ws, &mut tracker)?;
    let mut quality = ws.solver.last_quality();
    drop(assembler);

    // 2. Linearize into G and C triplets.
    let dim = circuit.dim();
    let n_nodes = circuit.node_unknowns();
    let (g, c) = linearized_matrices(circuit, &x_op, opts.dc.gmin);

    // 3. Excitation vector: unit AC on the named source.
    let mut rhs0 = vec![Complex::ZERO; dim];
    let mut found_source = false;
    let mut branch_of = vec![usize::MAX; circuit.element_slice().len()];
    for (b, &e_idx) in circuit.branch_elements().iter().enumerate() {
        branch_of[e_idx] = n_nodes + b;
    }
    for (e_idx, (name, element)) in circuit.element_slice().iter().enumerate() {
        if name != &opts.source {
            continue;
        }
        match element {
            Element::VoltageSource { .. } => {
                rhs0[branch_of[e_idx]] = Complex::ONE;
                found_source = true;
            }
            Element::CurrentSource { p, n, .. } => {
                if let Some(i) = p.unknown() {
                    rhs0[i] += -Complex::ONE;
                }
                if let Some(j) = n.unknown() {
                    rhs0[j] += Complex::ONE;
                }
                found_source = true;
            }
            _ => {}
        }
    }
    if !found_source {
        return Err(Error::UnknownElement(opts.source.clone()));
    }

    // 4. Solve per frequency.
    let mut data = Vec::with_capacity(opts.freqs.len());
    for (k, &f) in opts.freqs.iter().enumerate() {
        tracker.set_progress(k as f64 / opts.freqs.len().max(1) as f64);
        tracker.check()?;
        let omega = 2.0 * std::f64::consts::PI * f;
        let mut a = ComplexDenseMatrix::zeros(dim);
        for &(r, col, v) in g.entries() {
            a.add(r, col, Complex::real(v));
        }
        for &(r, col, v) in c.entries() {
            a.add(r, col, Complex::imag(omega * v));
        }
        let mut x = rhs0.clone();
        let point_quality = a.solve_in_place(&mut x)?;
        quality = quality.worst(point_quality);
        if telemetry::enabled() {
            telemetry::event(
                "ac_point",
                &[
                    ("freq", f.into()),
                    ("bwerr", point_quality.backward_error.into()),
                ],
            );
        }
        data.push(x);
    }
    let summary = TelemetrySummary {
        wall: started.elapsed(),
        lu: ws.solver.stats(),
        worst_backward_error: Some(quality.backward_error),
        cond_estimate: quality.cond_estimate,
        ..TelemetrySummary::default()
    };
    telemetry::record_summary(&summary);
    Ok(AcResult {
        freqs: opts.freqs.clone(),
        n_nodes,
        data,
        quality,
        telemetry: summary,
    })
}

/// Linearizes the circuit at the operating point `x_op` into conductance
/// (`G`) and capacitance (`C`) triplet matrices, with all independent
/// sources zeroed (voltage sources keep their branch rows — i.e. they are
/// AC shorts — and current sources are opens). Shared by the AC and noise
/// analyses.
pub(crate) fn linearized_matrices(
    circuit: &Circuit,
    x_op: &[f64],
    gmin: f64,
) -> (Triplets, Triplets) {
    let dim = circuit.dim();
    let n_nodes = circuit.node_unknowns();
    let mut g = Triplets::new(dim);
    let mut c = Triplets::new(dim);
    let mut branch_of = vec![usize::MAX; circuit.element_slice().len()];
    for (b, &e_idx) in circuit.branch_elements().iter().enumerate() {
        branch_of[e_idx] = n_nodes + b;
    }
    let v_of = |node: NodeId| -> f64 {
        match node.unknown() {
            Some(i) => x_op[i],
            None => 0.0,
        }
    };
    let stamp_g2 = |g: &mut Triplets, p: NodeId, n: NodeId, value: f64| {
        if let Some(i) = p.unknown() {
            g.add(i, i, value);
        }
        if let Some(j) = n.unknown() {
            g.add(j, j, value);
        }
        if let (Some(i), Some(j)) = (p.unknown(), n.unknown()) {
            g.add(i, j, -value);
            g.add(j, i, -value);
        }
    };

    for (e_idx, (_, element)) in circuit.element_slice().iter().enumerate() {
        match element {
            Element::Resistor { p, n, value } => stamp_g2(&mut g, *p, *n, 1.0 / value),
            Element::Capacitor { p, n, value } => stamp_g2(&mut c, *p, *n, *value),
            Element::Inductor { p, n, value } => {
                let branch = branch_of[e_idx];
                if let Some(i) = p.unknown() {
                    g.add(i, branch, 1.0);
                    g.add(branch, i, 1.0);
                }
                if let Some(j) = n.unknown() {
                    g.add(j, branch, -1.0);
                    g.add(branch, j, -1.0);
                }
                // v − jωL·i = 0 → −L into the C matrix at (branch, branch).
                c.add(branch, branch, -value);
            }
            Element::VoltageSource { p, n, .. } => {
                let branch = branch_of[e_idx];
                if let Some(i) = p.unknown() {
                    g.add(i, branch, 1.0);
                    g.add(branch, i, 1.0);
                }
                if let Some(j) = n.unknown() {
                    g.add(j, branch, -1.0);
                    g.add(branch, j, -1.0);
                }
            }
            Element::CurrentSource { .. } => {
                // Zeroed in small-signal analysis: an open circuit.
            }
            Element::Diode {
                anode,
                cathode,
                model,
            } => {
                let vd = v_of(*anode) - v_of(*cathode);
                let eval = model.eval(vd);
                stamp_g2(&mut g, *anode, *cathode, eval.gd);
                stamp_g2(&mut c, *anode, *cathode, eval.c);
            }
            Element::Bjt {
                collector,
                base,
                emitter,
                model,
            } => {
                let s = model.polarity.sign();
                let vbe = s * (v_of(*base) - v_of(*emitter));
                let vbc = s * (v_of(*base) - v_of(*collector));
                let eval = model.eval(vbe, vbc);
                // Current partials into G (signs as in the transient stamp).
                let nodes = [*collector, *base, *emitter];
                let dic = [
                    -eval.dic_dvbc,
                    eval.dic_dvbe + eval.dic_dvbc,
                    -eval.dic_dvbe,
                ];
                let dib = [
                    -eval.dib_dvbc,
                    eval.dib_dvbe + eval.dib_dvbc,
                    -eval.dib_dvbe,
                ];
                let die = [-(dic[0] + dib[0]), -(dic[1] + dib[1]), -(dic[2] + dib[2])];
                for (row_node, partials) in [(*collector, dic), (*base, dib), (*emitter, die)] {
                    if let Some(row) = row_node.unknown() {
                        for (k, node) in nodes.iter().enumerate() {
                            if let Some(col) = node.unknown() {
                                g.add(row, col, partials[k]);
                            }
                        }
                    }
                }
                stamp_g2(&mut c, *base, *emitter, eval.cbe);
                stamp_g2(&mut c, *base, *collector, eval.cbc);
            }
            Element::Vcvs { p, n, cp, cn, gain } => {
                let branch = branch_of[e_idx];
                if let Some(i) = p.unknown() {
                    g.add(i, branch, 1.0);
                    g.add(branch, i, 1.0);
                }
                if let Some(j) = n.unknown() {
                    g.add(j, branch, -1.0);
                    g.add(branch, j, -1.0);
                }
                if let Some(i) = cp.unknown() {
                    g.add(branch, i, -gain);
                }
                if let Some(j) = cn.unknown() {
                    g.add(branch, j, *gain);
                }
            }
            Element::Vccs { p, n, cp, cn, gm } => {
                for (row, sign) in [(*p, 1.0), (*n, -1.0)] {
                    if let Some(r) = row.unknown() {
                        if let Some(i) = cp.unknown() {
                            g.add(r, i, sign * gm);
                        }
                        if let Some(j) = cn.unknown() {
                            g.add(r, j, -sign * gm);
                        }
                    }
                }
            }
        }
    }
    // gmin blanket, as in DC.
    for i in 0..n_nodes {
        g.add(i, i, gmin);
    }
    (g, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{Netlist, SourceWave};

    #[test]
    fn rc_lowpass_pole() {
        // R = 1 kΩ, C = 1 nF → f_3dB = 159.2 kHz; phase −45° at the pole.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vdc("V1", a, Netlist::GROUND, 0.0).unwrap();
        nl.resistor("R1", a, b, 1.0e3).unwrap();
        nl.capacitor("C1", b, Netlist::GROUND, 1.0e-9).unwrap();
        let circuit = nl.compile().unwrap();
        let freqs = decade_freqs(1.0e3, 1.0e8, 40);
        let res = ac_analysis(&circuit, &AcOptions::new("V1", freqs)).unwrap();
        let f3 = res.bandwidth_3db(b).expect("pole in range");
        let expected = 1.0 / (2.0 * std::f64::consts::PI * 1.0e3 * 1.0e-9);
        assert!(
            (f3 - expected).abs() < 0.03 * expected,
            "f3dB {f3:.3e} vs {expected:.3e}"
        );
        // Low-frequency gain ≈ 0 dB; slope −20 dB/dec well past the pole.
        let mags = res.mag_db(b);
        assert!(mags[0].abs() < 0.05);
        let hf = mags[mags.len() - 1] - mags[mags.len() - 41];
        assert!((hf + 20.0).abs() < 1.0, "slope {hf} dB/decade");
        // Phase approaches −90°.
        let ph = res.phase_deg(b);
        assert!(ph.last().unwrap() < &-85.0);
    }

    #[test]
    fn rlc_series_resonance_peak() {
        // Series RLC driven across the capacitor: peak near
        // f0 = 1/(2π√(LC)) with Q = (1/R)·√(L/C).
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        let c = nl.node("c");
        nl.vdc("V1", a, Netlist::GROUND, 0.0).unwrap();
        nl.resistor("R1", a, b, 10.0).unwrap();
        nl.inductor("L1", b, c, 1.0e-6).unwrap();
        nl.capacitor("C1", c, Netlist::GROUND, 1.0e-9).unwrap();
        let circuit = nl.compile().unwrap();
        let freqs = decade_freqs(1.0e5, 1.0e8, 60);
        let res = ac_analysis(&circuit, &AcOptions::new("V1", freqs)).unwrap();
        let mags = res.mag_db(c);
        let (k_peak, peak) = mags
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).expect("finite"))
            .unwrap();
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1.0e-6f64 * 1.0e-9).sqrt());
        assert!(
            (res.freqs()[k_peak] - f0).abs() < 0.05 * f0,
            "peak at {:.3e} vs f0 {f0:.3e}",
            res.freqs()[k_peak]
        );
        let q = (1.0 / 10.0) * (1.0e-6f64 / 1.0e-9).sqrt();
        assert!(
            (*peak - 20.0 * q.log10()).abs() < 0.6,
            "peak {peak:.2} dB vs Q {:.2} dB",
            20.0 * q.log10()
        );
    }

    #[test]
    fn vcvs_gain_is_flat() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vdc("V1", a, Netlist::GROUND, 0.0).unwrap();
        nl.vcvs("E1", b, Netlist::GROUND, a, Netlist::GROUND, 10.0)
            .unwrap();
        nl.resistor("RL", b, Netlist::GROUND, 1.0e3).unwrap();
        let circuit = nl.compile().unwrap();
        let res = ac_analysis(&circuit, &AcOptions::new("V1", vec![1.0e3, 1.0e6, 1.0e9])).unwrap();
        for k in 0..3 {
            assert!((res.response(b, k).db() - 20.0).abs() < 1e-6);
        }
    }

    #[test]
    fn bjt_amplifier_has_finite_bandwidth() {
        // The common-emitter stage from the integration tests: gain ≈
        // Rc/(Re + 1/gm) at low frequency, rolling off in the GHz range
        // through Cjc/Cje.
        let mut nl = Netlist::new();
        let vcc = nl.node("vcc");
        let vb = nl.node("vb");
        let vc = nl.node("vc");
        let ve = nl.node("ve");
        nl.vdc("VCC", vcc, Netlist::GROUND, 5.0).unwrap();
        nl.vsource("VB", vb, Netlist::GROUND, SourceWave::Dc(1.4))
            .unwrap();
        nl.resistor("RC", vcc, vc, 2.0e3).unwrap();
        nl.resistor("RE", ve, Netlist::GROUND, 500.0).unwrap();
        nl.bjt("Q1", vc, vb, ve, crate::devices::BjtModel::fast_npn())
            .unwrap();
        let circuit = nl.compile().unwrap();
        let freqs = decade_freqs(1.0e5, 1.0e11, 20);
        let res = ac_analysis(&circuit, &AcOptions::new("VB", freqs)).unwrap();
        let dc_gain = res.response(vc, 0).abs();
        assert!(
            (dc_gain - 2.0e3 / 526.0).abs() < 0.15 * dc_gain,
            "AC low-frequency gain {dc_gain:.2}"
        );
        let f3 = res.bandwidth_3db(vc).expect("finite bandwidth");
        assert!(
            (1.0e8..1.0e11).contains(&f3),
            "bandwidth {f3:.3e} Hz should be GHz-scale"
        );
    }

    #[test]
    fn unknown_source_is_an_error() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vdc("V1", a, Netlist::GROUND, 1.0).unwrap();
        nl.resistor("R1", a, Netlist::GROUND, 1.0).unwrap();
        let circuit = nl.compile().unwrap();
        assert!(ac_analysis(&circuit, &AcOptions::new("VX", vec![1.0e3])).is_err());
    }

    #[test]
    fn decade_grid() {
        let f = decade_freqs(1.0e3, 1.0e6, 10);
        assert_eq!(f.len(), 31);
        assert!((f[0] - 1.0e3).abs() < 1e-9);
        assert!((f[30] - 1.0e6).abs() < 1e-3);
        assert!(decade_freqs(0.0, 1.0, 10).is_empty());
    }
}
