//! DC operating point and DC sweeps.
//!
//! The solver escalates through a **recovery ladder**: plain
//! Newton–Raphson, damped Newton, `gmin` stepping (a conductance
//! homotopy), source stepping, and finally pseudo-transient continuation
//! (backward-Euler pseudo-timestepping toward steady state). Every rung
//! attempt is recorded in a [`ConvergenceReport`] attached to the
//! [`DcSolution`] — and embedded in [`Error::DcNoConvergence`] when the
//! whole ladder fails — so sweeps and experiments can report *how* a
//! corner converged or why it did not, instead of dying on it.

use super::budget::{BudgetTracker, Phase, RunBudget};
use super::mna::{Assembler, EvalMode, SolveWorkspace};
use super::preflight;
use crate::chaos;
use crate::error::Error;
use crate::linalg::{LuStats, SolveQuality, Solver};
use crate::netlist::{Circuit, NodeId};
use crate::telemetry::{self, TelemetrySummary};
use std::fmt;
use std::time::{Duration, Instant};

/// One rung of the DC convergence recovery ladder, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryRung {
    /// Plain Newton–Raphson from a zero start.
    Newton,
    /// Newton with a damped update (half steps), for overshooting loops.
    DampedNewton,
    /// Conductance homotopy: converge under a heavy `gmin` blanket, then
    /// relax it decade by decade.
    GminStepping,
    /// Independent sources ramped from 10% to 100% with adaptive steps.
    SourceStepping,
    /// Pseudo-transient continuation: backward-Euler pseudo-timestepping
    /// with a per-node conductance that anneals away, following the
    /// circuit's own dynamics to steady state.
    PseudoTransient,
}

impl RecoveryRung {
    /// Short label used in reports and log lines.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryRung::Newton => "newton",
            RecoveryRung::DampedNewton => "damped-newton",
            RecoveryRung::GminStepping => "gmin-stepping",
            RecoveryRung::SourceStepping => "source-stepping",
            RecoveryRung::PseudoTransient => "pseudo-transient",
        }
    }
}

impl fmt::Display for RecoveryRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Outcome of one ladder rung.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RungAttempt {
    /// Which rung ran.
    pub rung: RecoveryRung,
    /// Newton iterations spent in this rung (summed over homotopy steps).
    pub iterations: usize,
    /// Whether the rung produced a converged operating point.
    pub converged: bool,
    /// Worst unknown-change magnitude at the rung's final iterate.
    pub worst_residual: f64,
}

/// Structured account of how an operating point was (or was not) found.
#[derive(Debug, Clone, PartialEq, Default)]
#[must_use]
pub struct ConvergenceReport {
    /// Every rung attempted, in order.
    pub attempts: Vec<RungAttempt>,
    /// The rung that produced the solution, `None` when all failed.
    pub succeeded: Option<RecoveryRung>,
    /// Index of the unknown with the worst final residual (a node voltage
    /// when `< n_nodes`, otherwise a branch current); `None` when no
    /// iteration ran at all.
    pub worst_unknown: Option<usize>,
    /// Worst unknown-change magnitude at the last iterate of the last
    /// attempted rung.
    pub worst_residual: f64,
    /// Structural pre-flight findings on the assembled pattern (floating
    /// nodes, empty rows/columns, scaling warnings), recorded before the
    /// first factorization. Diagnostics only: the ladder's gmin rungs cure
    /// a DC-floating node, so a finding here does not imply failure — use
    /// [`assert_preflight`](super::preflight::assert_preflight) to reject
    /// such circuits up front instead.
    pub preflight: Vec<String>,
}

impl ConvergenceReport {
    /// Total Newton iterations across every rung.
    #[must_use]
    pub fn total_iterations(&self) -> usize {
        self.attempts.iter().map(|a| a.iterations).sum()
    }

    /// Whether the solution needed anything beyond plain Newton.
    #[must_use]
    pub fn escalated(&self) -> bool {
        !matches!(self.succeeded, Some(RecoveryRung::Newton))
    }

    /// Name of the worst-residual node in `circuit`, when it is a node
    /// voltage (branch-current unknowns return `None`).
    #[must_use]
    pub fn worst_node_name<'c>(&self, circuit: &'c Circuit) -> Option<&'c str> {
        let idx = self.worst_unknown?;
        circuit
            .node_ids()
            .find(|id| id.unknown() == Some(idx))
            .map(|id| circuit.netlist().node_name(id))
    }

    /// One-line human-readable summary, e.g.
    /// `"converged via gmin-stepping (3 rungs, 204 iterations)"`.
    #[must_use]
    pub fn summary(&self) -> String {
        match self.succeeded {
            Some(rung) => format!(
                "converged via {} ({} rung{}, {} iterations)",
                rung.label(),
                self.attempts.len(),
                if self.attempts.len() == 1 { "" } else { "s" },
                self.total_iterations()
            ),
            None => format!(
                "no convergence after {} rungs ({} iterations, worst residual {:.3e})",
                self.attempts.len(),
                self.total_iterations(),
                self.worst_residual
            ),
        }
    }

    fn record(&mut self, rung: RecoveryRung, run: &NewtonRun) {
        self.attempts.push(RungAttempt {
            rung,
            iterations: run.iterations,
            converged: run.converged,
            worst_residual: run.worst_delta,
        });
        self.worst_residual = run.worst_delta;
        if run.iterations > 0 {
            self.worst_unknown = Some(run.worst_index);
        }
        if run.converged {
            self.succeeded = Some(rung);
        }
    }
}

/// Options for the DC operating-point solver.
#[derive(Debug, Clone, PartialEq)]
pub struct DcOptions {
    /// Maximum Newton iterations per attempt.
    pub max_iterations: usize,
    /// Absolute node-voltage convergence tolerance, volts.
    pub abstol_v: f64,
    /// Absolute branch-current convergence tolerance, amperes.
    pub abstol_i: f64,
    /// Relative convergence tolerance.
    pub reltol: f64,
    /// Final gmin left in the circuit, siemens.
    pub gmin: f64,
    /// Execution budget (wall clock, iteration caps, cancellation) for
    /// the analysis call this options struct drives. Unlimited by default.
    pub budget: RunBudget,
}

impl Default for DcOptions {
    fn default() -> Self {
        Self {
            max_iterations: 150,
            abstol_v: 1.0e-6,
            abstol_i: 1.0e-9,
            reltol: 1.0e-3,
            gmin: 1.0e-12,
            budget: RunBudget::default(),
        }
    }
}

/// A converged DC solution.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    n_nodes: usize,
    x: Vec<f64>,
    report: ConvergenceReport,
    quality: SolveQuality,
    telemetry: TelemetrySummary,
}

impl DcSolution {
    /// How the solution was found: which recovery rung succeeded, and at
    /// what iteration cost.
    pub fn report(&self) -> &ConvergenceReport {
        &self.report
    }

    /// Telemetry rollup for this solve: wall time, Newton totals per
    /// ladder rung, kernel counters, worst backward error.
    pub fn telemetry(&self) -> &TelemetrySummary {
        &self.telemetry
    }

    /// Certification record of the final (converged) linear solve:
    /// backward error, refinement steps, condition estimate when one was
    /// computed.
    pub fn quality(&self) -> SolveQuality {
        self.quality
    }

    /// Voltage of `node`, volts.
    pub fn voltage(&self, node: NodeId) -> f64 {
        match node.unknown() {
            Some(i) => self.x[i],
            None => 0.0,
        }
    }

    /// Branch current of the `k`-th branch element (voltage sources and
    /// inductors in netlist order), amperes.
    pub fn branch_current(&self, k: usize) -> f64 {
        self.x[self.n_nodes + k]
    }

    /// The raw unknown vector (node voltages then branch currents).
    pub fn unknowns(&self) -> &[f64] {
        &self.x
    }

    /// Consumes the solution, returning the unknown vector.
    pub fn into_unknowns(self) -> Vec<f64> {
        self.x
    }
}

/// Diagnostics from one Newton attempt (converged or not).
#[derive(Debug, Clone, Copy)]
pub(crate) struct NewtonRun {
    /// Iterations spent.
    pub iterations: usize,
    /// Worst unknown-change magnitude at the final iterate.
    pub worst_delta: f64,
    /// Index of the worst unknown at the final iterate.
    pub worst_index: usize,
    /// Whether the attempt converged.
    pub converged: bool,
}

impl NewtonRun {
    fn fresh() -> Self {
        Self {
            iterations: 0,
            worst_delta: f64::INFINITY,
            worst_index: 0,
            converged: false,
        }
    }
}

/// Pseudo-transient term added to the assembled system: a conductance `g`
/// from every node to its value in `anchor` (backward Euler on a unit
/// capacitance with `h = C/g`).
struct PtranTerm<'a> {
    g: f64,
    anchor: &'a [f64],
}

/// Runs one Newton–Raphson attempt from `x`, in place.
///
/// `damping` scales the update (`1.0` = full Newton). `ptran` optionally
/// adds pseudo-transient continuation terms. Returns full diagnostics;
/// solver failures (singular matrix) and a spent budget surface as `Err`.
#[allow(clippy::too_many_arguments)]
fn newton_run(
    assembler: &mut Assembler<'_>,
    mode: &EvalMode,
    x: &mut [f64],
    opts: &DcOptions,
    ws: &mut SolveWorkspace,
    tracker: &mut BudgetTracker,
    damping: f64,
    ptran: Option<&PtranTerm<'_>>,
) -> Result<NewtonRun, Error> {
    let n_nodes = assembler.circuit().node_unknowns();
    let mut run = NewtonRun::fresh();
    let hang = chaos::hang_active();
    let nan_stamp = chaos::nan_stamp_active();
    for iter in 0..opts.max_iterations {
        tracker.check()?;
        let SolveWorkspace {
            solver,
            triplets,
            rhs,
        } = ws;
        assembler.assemble(x, mode, triplets, rhs);
        if let Some(pt) = ptran {
            for (i, r) in rhs.iter_mut().enumerate().take(n_nodes) {
                triplets.add(i, i, pt.g);
                *r += pt.g * pt.anchor[i];
            }
        }
        if nan_stamp {
            if let Some(r) = rhs.first_mut() {
                *r = f64::NAN;
            }
        }
        solver.solve_in_place(triplets, rhs)?;
        run.iterations = iter + 1;
        tracker.count_newton(1);
        if hang {
            chaos::hang_beat();
        }
        // A non-finite iterate can never converge — and would otherwise be
        // *accepted*, because `NaN > tol` is false below. Fail the attempt
        // immediately and let the ladder (or the caller) handle it.
        if let Some(bad) = rhs.iter().position(|v| !v.is_finite()) {
            run.worst_delta = f64::INFINITY;
            run.worst_index = bad;
            if telemetry::enabled() {
                telemetry::event(
                    "newton_nonfinite",
                    &[("iter", run.iterations.into()), ("unknown", bad.into())],
                );
            }
            return Ok(run);
        }
        let mut converged = true;
        run.worst_delta = 0.0;
        for (i, (&new, old)) in rhs.iter().zip(x.iter()).enumerate() {
            let abstol = if i < n_nodes {
                opts.abstol_v
            } else {
                opts.abstol_i
            };
            let tol = abstol + opts.reltol * new.abs().max(old.abs());
            let delta = (new - old).abs();
            if delta > tol {
                converged = false;
            }
            if delta > run.worst_delta {
                run.worst_delta = delta;
                run.worst_index = i;
            }
        }
        // Residual trajectory: one event per Newton iteration, so the
        // flight recorder shows *how* a rung was converging (or not)
        // when something downstream failed.
        if telemetry::enabled() {
            telemetry::event(
                "newton_iter",
                &[
                    ("iter", run.iterations.into()),
                    ("max_delta", run.worst_delta.into()),
                    ("worst_unknown", run.worst_index.into()),
                    ("converged", converged.into()),
                ],
            );
        }
        if damping >= 1.0 {
            x.copy_from_slice(rhs);
        } else {
            for (xi, &new) in x.iter_mut().zip(rhs.iter()) {
                *xi += damping * (new - *xi);
            }
        }
        if converged && !hang && !assembler.was_limited() && iter > 0 {
            run.converged = true;
            return Ok(run);
        }
    }
    Ok(run)
}

/// Runs one plain Newton–Raphson attempt from `x`, in place.
///
/// Returns the number of iterations used; kept as the simple entry point
/// the transient engine and DC sweeps use.
pub(crate) fn newton(
    assembler: &mut Assembler<'_>,
    mode: &EvalMode,
    x: &mut [f64],
    opts: &DcOptions,
    ws: &mut SolveWorkspace,
    tracker: &mut BudgetTracker,
) -> Result<usize, Error> {
    let run = newton_run(assembler, mode, x, opts, ws, tracker, 1.0, None)?;
    if run.converged {
        Ok(run.iterations)
    } else {
        Err(Error::DcNoConvergence {
            iterations: run.iterations,
            residual: run.worst_delta,
            report: None,
        })
    }
}

/// Computes the DC operating point of `circuit`.
///
/// Escalates through the full recovery ladder (see the module docs); the
/// returned [`DcSolution`] carries a [`ConvergenceReport`] describing which
/// rung succeeded and at what cost.
///
/// # Errors
///
/// Returns [`Error::DcNoConvergence`] — with the full report embedded —
/// when every rung of the ladder fails, [`Error::SingularMatrix`] for
/// structurally broken circuits on which no Newton iteration completes,
/// or [`Error::DeadlineExceeded`] when `opts.budget` is spent first.
pub fn operating_point(circuit: &Circuit, opts: &DcOptions) -> Result<DcSolution, Error> {
    let started = Instant::now();
    let mut assembler = Assembler::new(circuit);
    let mut ws = SolveWorkspace::for_circuit(circuit);
    let mut tracker = BudgetTracker::new(&opts.budget, Phase::DcOperatingPoint);
    let (x, report) =
        recover_operating_point(circuit, opts, &mut assembler, &mut ws, &mut tracker)?;
    let quality = ws.solver.last_quality();
    let telemetry = dc_summary(started.elapsed(), &report, ws.solver.stats(), quality);
    telemetry::record_summary(&telemetry);
    Ok(DcSolution {
        n_nodes: circuit.node_unknowns(),
        x,
        report,
        quality,
        telemetry,
    })
}

/// Builds the per-solve telemetry rollup from the diagnostics the DC
/// path already tracks (report, kernel counters, certification record).
fn dc_summary(
    wall: Duration,
    report: &ConvergenceReport,
    lu: LuStats,
    quality: SolveQuality,
) -> TelemetrySummary {
    TelemetrySummary {
        wall,
        newton_iterations: report.total_iterations() as u64,
        rung_iterations: report
            .attempts
            .iter()
            .map(|a| (a.rung.label().to_string(), a.iterations as u64))
            .collect(),
        lu,
        worst_backward_error: Some(quality.backward_error),
        cond_estimate: quality.cond_estimate,
        ..TelemetrySummary::default()
    }
}

/// Operating point reusing an existing assembler (so transient can keep the
/// junction-limiting state it seeds). Discards the convergence report.
pub(crate) fn operating_point_with(
    circuit: &Circuit,
    opts: &DcOptions,
    assembler: &mut Assembler<'_>,
    ws: &mut SolveWorkspace,
    tracker: &mut BudgetTracker,
) -> Result<Vec<f64>, Error> {
    recover_operating_point(circuit, opts, assembler, ws, tracker).map(|(x, _)| x)
}

/// One rung of the recovery ladder: attempts a full solve, returning the
/// candidate solution and the aggregated Newton diagnostics.
type RungFn = fn(
    &Circuit,
    &DcOptions,
    &mut Assembler<'_>,
    &mut SolveWorkspace,
    &mut BudgetTracker,
) -> Result<(Vec<f64>, NewtonRun), Error>;

/// The recovery ladder itself: runs each rung in order, recording every
/// attempt, and returns the first converged solution with its report.
pub(crate) fn recover_operating_point(
    circuit: &Circuit,
    opts: &DcOptions,
    assembler: &mut Assembler<'_>,
    ws: &mut SolveWorkspace,
    tracker: &mut BudgetTracker,
) -> Result<(Vec<f64>, ConvergenceReport), Error> {
    // Structural pre-flight: scan the assembled pattern once, before the
    // first factorization, and attach the findings (named nodes, not
    // kernel column indices) as diagnostics. Not fatal here — the gmin
    // rungs cure DC-floating nodes.
    let mut report = ConvergenceReport {
        preflight: preflight::preflight(circuit).messages(),
        ..ConvergenceReport::default()
    };
    // The most recent structural (solver) failure; returned instead of
    // `DcNoConvergence` when no rung completed a single iteration, because
    // a singular matrix — not divergence — is then the root cause.
    let mut structural: Option<Error> = None;

    let rungs: [RungFn; 5] = [
        rung_newton,
        rung_damped_newton,
        rung_gmin_stepping,
        rung_source_stepping,
        rung_pseudo_transient,
    ];
    let labels = [
        RecoveryRung::Newton,
        RecoveryRung::DampedNewton,
        RecoveryRung::GminStepping,
        RecoveryRung::SourceStepping,
        RecoveryRung::PseudoTransient,
    ];

    for (i, (rung, label)) in rungs.iter().zip(labels).enumerate() {
        if tracker.phase() == Phase::DcOperatingPoint {
            tracker.set_progress(i as f64 / rungs.len() as f64);
        }
        let _rung_span = telemetry::span(label.label());
        match rung(circuit, opts, assembler, ws, tracker) {
            Ok((x, run)) => {
                report.record(label, &run);
                if run.converged {
                    return Ok((x, report));
                }
                if telemetry::enabled() {
                    telemetry::event(
                        "rung_failed",
                        &[
                            ("rung", label.label().into()),
                            ("iterations", run.iterations.into()),
                            ("worst_residual", run.worst_delta.into()),
                            ("worst_unknown", run.worst_index.into()),
                        ],
                    );
                }
            }
            // A spent budget or a failed certification is non-retriable:
            // climbing further rungs would burn wall clock the caller no
            // longer has, or reproduce the same untrusted numbers.
            Err(err) if err.is_non_retriable() => return Err(err),
            Err(err) => {
                // Structural failure inside this rung: record a
                // zero-iteration attempt and keep climbing — a homotopy
                // higher up may still regularise the matrix.
                report.record(label, &NewtonRun::fresh());
                structural = Some(err);
            }
        }
    }

    if report.total_iterations() == 0 {
        if let Some(err) = structural {
            if telemetry::enabled() {
                telemetry::record_failure("SolverFailure", &err.to_string());
            }
            return Err(err);
        }
    }
    let residual = report.worst_residual;
    let iterations = report.total_iterations();
    if telemetry::enabled() {
        // The ladder is exhausted: ship the buffered trajectory. The
        // rung_failed events above identify which rung gave up where.
        telemetry::record_failure("DcNoConvergence", &report.summary());
    }
    Err(Error::DcNoConvergence {
        iterations,
        residual,
        report: Some(Box::new(report)),
    })
}

/// Rung 1: plain Newton from a zero start.
fn rung_newton(
    circuit: &Circuit,
    opts: &DcOptions,
    assembler: &mut Assembler<'_>,
    ws: &mut SolveWorkspace,
    tracker: &mut BudgetTracker,
) -> Result<(Vec<f64>, NewtonRun), Error> {
    let mut x = vec![0.0; circuit.dim()];
    assembler.reset_junctions(&x);
    let run = newton_run(
        assembler,
        &EvalMode::dc(opts.gmin),
        &mut x,
        opts,
        ws,
        tracker,
        1.0,
        None,
    )?;
    Ok((x, run))
}

/// Rung 2: damped Newton (half steps) from a zero start — rescues loops
/// where full steps overshoot and oscillate.
fn rung_damped_newton(
    circuit: &Circuit,
    opts: &DcOptions,
    assembler: &mut Assembler<'_>,
    ws: &mut SolveWorkspace,
    tracker: &mut BudgetTracker,
) -> Result<(Vec<f64>, NewtonRun), Error> {
    let mut x = vec![0.0; circuit.dim()];
    assembler.reset_junctions(&x);
    // Damping halves the contraction rate, so allow more iterations.
    let opts = DcOptions {
        max_iterations: opts.max_iterations * 2,
        ..opts.clone()
    };
    let run = newton_run(
        assembler,
        &EvalMode::dc(opts.gmin),
        &mut x,
        &opts,
        ws,
        tracker,
        0.5,
        None,
    )?;
    Ok((x, run))
}

/// Rung 3: gmin stepping — converge with a heavy conductance blanket,
/// then relax it decade by decade.
fn rung_gmin_stepping(
    circuit: &Circuit,
    opts: &DcOptions,
    assembler: &mut Assembler<'_>,
    ws: &mut SolveWorkspace,
    tracker: &mut BudgetTracker,
) -> Result<(Vec<f64>, NewtonRun), Error> {
    let mut x = vec![0.0; circuit.dim()];
    assembler.reset_junctions(&x);
    let mut gmin = 1.0e-2;
    let mut total = NewtonRun::fresh();
    loop {
        let mode = EvalMode::dc(gmin);
        let run = newton_run(assembler, &mode, &mut x, opts, ws, tracker, 1.0, None)?;
        total.iterations += run.iterations;
        total.worst_delta = run.worst_delta;
        total.worst_index = run.worst_index;
        if !run.converged {
            return Ok((x, total));
        }
        if gmin <= opts.gmin {
            total.converged = true;
            return Ok((x, total));
        }
        gmin = (gmin / 10.0).max(opts.gmin);
    }
}

/// Rung 4: source stepping — ramp independent sources from 10% to 100%
/// with an adaptive step.
fn rung_source_stepping(
    circuit: &Circuit,
    opts: &DcOptions,
    assembler: &mut Assembler<'_>,
    ws: &mut SolveWorkspace,
    tracker: &mut BudgetTracker,
) -> Result<(Vec<f64>, NewtonRun), Error> {
    let mut x = vec![0.0; circuit.dim()];
    assembler.reset_junctions(&x);
    let mut total = NewtonRun::fresh();
    let mut scale = 0.1;
    let mut step = 0.1;
    while scale <= 1.0 + 1e-12 {
        let mode = EvalMode {
            source_scale: scale,
            ..EvalMode::dc(opts.gmin)
        };
        let mut attempt = x.clone();
        let run = newton_run(assembler, &mode, &mut attempt, opts, ws, tracker, 1.0, None)?;
        total.iterations += run.iterations;
        total.worst_delta = run.worst_delta;
        total.worst_index = run.worst_index;
        if run.converged {
            x = attempt;
            if (scale - 1.0).abs() < 1e-12 {
                total.converged = true;
                return Ok((x, total));
            }
            scale = (scale + step).min(1.0);
        } else {
            step /= 2.0;
            if step < 1.0e-3 {
                return Ok((x, total));
            }
            scale = (scale - step).max(step);
        }
    }
    Ok((x, total))
}

/// Rung 5: pseudo-transient continuation. Adds a conductance `g` from
/// every node to the last accepted iterate (backward Euler on a unit
/// capacitance, pseudo-timestep `h = C/g`), which regularises the Jacobian
/// and follows the circuit's own dynamics toward steady state. `g` anneals
/// away on success and backs off on failure; a plain Newton polish
/// confirms the final point is a true equilibrium.
fn rung_pseudo_transient(
    circuit: &Circuit,
    opts: &DcOptions,
    assembler: &mut Assembler<'_>,
    ws: &mut SolveWorkspace,
    tracker: &mut BudgetTracker,
) -> Result<(Vec<f64>, NewtonRun), Error> {
    const G_START: f64 = 1.0;
    const G_FLOOR: f64 = 1.0e-10;
    const G_CEIL: f64 = 1.0e9;
    const ANNEAL: f64 = 3.0;
    const BACKOFF: f64 = 8.0;
    const MAX_PSEUDO_STEPS: usize = 120;

    let dim = circuit.dim();
    let mut x = vec![0.0; dim];
    assembler.reset_junctions(&x);
    let mut anchor = x.clone();
    let mut g = G_START;
    let mut total = NewtonRun::fresh();
    let mode = EvalMode::dc(opts.gmin);

    for _ in 0..MAX_PSEUDO_STEPS {
        let term = PtranTerm { g, anchor: &anchor };
        let run = newton_run(
            assembler,
            &mode,
            &mut x,
            opts,
            ws,
            tracker,
            1.0,
            Some(&term),
        )?;
        total.iterations += run.iterations;
        total.worst_delta = run.worst_delta;
        total.worst_index = run.worst_index;
        if run.converged {
            anchor.copy_from_slice(&x);
            if g <= G_FLOOR {
                break;
            }
            g /= ANNEAL;
        } else {
            // Pseudo-step too aggressive: rewind and stiffen the anchor.
            x.copy_from_slice(&anchor);
            assembler.reset_junctions(&x);
            g *= BACKOFF;
            if g > G_CEIL {
                return Ok((x, total));
            }
        }
    }

    // Polish: the anchored term is tiny but nonzero; confirm the point is
    // an equilibrium of the unmodified equations.
    let polish = newton_run(assembler, &mode, &mut x, opts, ws, tracker, 1.0, None)?;
    total.iterations += polish.iterations;
    total.worst_delta = polish.worst_delta;
    total.worst_index = polish.worst_index;
    total.converged = polish.converged;
    Ok((x, total))
}

/// Sweeps the value of a DC voltage source and records the operating point
/// at each setting, using the previous solution as the next starting guess
/// (continuation) — this is what the hysteresis experiment of the paper's
/// Figure 12 needs, because the comparator's state depends on the sweep
/// direction.
///
/// # Errors
///
/// Fails if any point fails to converge, or with
/// [`Error::DeadlineExceeded`] when `opts.budget` runs out mid-sweep (the
/// error's `progress` records the fraction of points completed).
pub fn sweep_vsource(
    circuit: &Circuit,
    source: &str,
    values: &[f64],
    opts: &DcOptions,
) -> Result<Vec<DcSolution>, Error> {
    // Verify the element exists and is a voltage source up front.
    match circuit.netlist().element(source)? {
        crate::netlist::Element::VoltageSource { .. } => {}
        other => {
            return Err(Error::InvalidValue {
                element: source.to_string(),
                reason: format!("expected a voltage source, found {}", other.type_tag()),
            })
        }
    }
    let mut results = Vec::with_capacity(values.len());
    let mut previous: Option<Vec<f64>> = None;
    // One workspace across the sweep: consecutive points share the same
    // matrix pattern, so every solve after the first reuses the cached
    // stamp map and symbolic factorization.
    let mut ws = SolveWorkspace::new(circuit.dim());
    let mut tracker = BudgetTracker::new(&opts.budget, Phase::DcSweep);
    for (k, &v) in values.iter().enumerate() {
        let point_started = Instant::now();
        let lu_before = ws.solver.stats();
        tracker.set_progress(k as f64 / values.len() as f64);
        tracker.check()?;
        // Rebuild the netlist with the new source value.
        let mut nl = circuit.netlist().clone();
        let (p, n) = match nl.element(source)? {
            crate::netlist::Element::VoltageSource { p, n, .. } => (*p, *n),
            _ => unreachable!("validated above"),
        };
        nl.remove_element(source)?;
        nl.vdc(source, p, n, v)?;
        let swept = nl.compile()?;
        let mut assembler = Assembler::new(&swept);
        let (x, report) = match &previous {
            Some(prev) => {
                // Continuation: start Newton from the previous solution.
                let mut x = prev.clone();
                assembler.reset_junctions(&x);
                match newton(
                    &mut assembler,
                    &EvalMode::dc(opts.gmin),
                    &mut x,
                    opts,
                    &mut ws,
                    &mut tracker,
                ) {
                    Ok(iterations) => {
                        let mut report = ConvergenceReport::default();
                        report.record(
                            RecoveryRung::Newton,
                            &NewtonRun {
                                iterations,
                                worst_delta: 0.0,
                                worst_index: 0,
                                converged: true,
                            },
                        );
                        (x, report)
                    }
                    // A spent budget or a failed certification is
                    // non-retriable; anything else falls back to the full
                    // recovery ladder.
                    Err(err) if err.is_non_retriable() => return Err(err),
                    Err(_) => recover_operating_point(
                        &swept,
                        opts,
                        &mut assembler,
                        &mut ws,
                        &mut tracker,
                    )?,
                }
            }
            None => recover_operating_point(&swept, opts, &mut assembler, &mut ws, &mut tracker)?,
        };
        previous = Some(x.clone());
        let quality = ws.solver.last_quality();
        // Per-point delta on the shared workspace, so each solution's
        // rollup only counts its own factorizations and solves.
        let telemetry = dc_summary(
            point_started.elapsed(),
            &report,
            ws.solver.stats().delta_since(&lu_before),
            quality,
        );
        telemetry::record_summary(&telemetry);
        results.push(DcSolution {
            n_nodes: swept.node_unknowns(),
            x,
            report,
            quality,
            telemetry,
        });
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{BjtModel, DiodeModel};
    use crate::netlist::Netlist;

    #[test]
    fn divider() {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.vdc("V1", vin, Netlist::GROUND, 3.3).unwrap();
        nl.resistor("R1", vin, out, 1.0e3).unwrap();
        nl.resistor("R2", out, Netlist::GROUND, 2.0e3).unwrap();
        let c = nl.compile().unwrap();
        let op = operating_point(&c, &DcOptions::default()).unwrap();
        assert!((op.voltage(out) - 2.2).abs() < 1e-6);
        assert!((op.voltage(vin) - 3.3).abs() < 1e-9);
        assert!((op.voltage(Netlist::GROUND)).abs() == 0.0);
    }

    #[test]
    fn diode_forward_drop() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let d = nl.node("d");
        nl.vdc("V1", a, Netlist::GROUND, 3.3).unwrap();
        nl.resistor("R1", a, d, 6.0e3).unwrap();
        nl.diode("D1", d, Netlist::GROUND, DiodeModel::new())
            .unwrap();
        let c = nl.compile().unwrap();
        let op = operating_point(&c, &DcOptions::default()).unwrap();
        let vd = op.voltage(d);
        assert!((0.8..1.0).contains(&vd), "diode drop {vd}");
        // Current through R1 matches the diode law.
        let i = (3.3 - vd) / 6.0e3;
        let model_v = DiodeModel::new().forward_voltage(i);
        assert!((vd - model_v).abs() < 1e-3);
    }

    #[test]
    fn bjt_current_mirror_ish_bias() {
        // Current-source transistor with emitter degeneration, as in the
        // tail of a CML gate.
        let mut nl = Netlist::new();
        let vcc = nl.node("vcc");
        let b = nl.node("b");
        let col = nl.node("c");
        let e = nl.node("e");
        nl.vdc("VCC", vcc, Netlist::GROUND, 3.3).unwrap();
        nl.vdc("VB", b, Netlist::GROUND, 1.3).unwrap();
        nl.resistor("RC", vcc, col, 1.0e3).unwrap();
        nl.resistor("RE", e, Netlist::GROUND, 1.0e3).unwrap();
        nl.bjt("Q1", col, b, e, BjtModel::fast_npn()).unwrap();
        let c = nl.compile().unwrap();
        let op = operating_point(&c, &DcOptions::default()).unwrap();
        // IE ≈ (1.3 - 0.9)/1k = 0.4 mA.
        let ie = op.voltage(e) / 1.0e3;
        assert!((0.3e-3..0.5e-3).contains(&ie), "tail current {ie}");
        // Collector resistor sees almost the same current.
        let ic = (3.3 - op.voltage(col)) / 1.0e3;
        assert!((ic - ie).abs() < 0.05 * ie);
    }

    #[test]
    fn differential_pair_steers_current() {
        let mut nl = Netlist::new();
        let vcc = nl.node("vcc");
        let bp = nl.node("bp");
        let bn = nl.node("bn");
        let cp = nl.node("cp");
        let cn = nl.node("cn");
        let tail = nl.node("tail");
        nl.vdc("VCC", vcc, Netlist::GROUND, 3.3).unwrap();
        nl.vdc("VBP", bp, Netlist::GROUND, 2.0).unwrap();
        nl.vdc("VBN", bn, Netlist::GROUND, 1.75).unwrap();
        nl.resistor("RCP", vcc, cp, 1.0e3).unwrap();
        nl.resistor("RCN", vcc, cn, 1.0e3).unwrap();
        nl.bjt("Q1", cp, bp, tail, BjtModel::fast_npn()).unwrap();
        nl.bjt("Q2", cn, bn, tail, BjtModel::fast_npn()).unwrap();
        nl.idc("IT", tail, Netlist::GROUND, 0.4e-3).unwrap();
        let c = nl.compile().unwrap();
        let op = operating_point(&c, &DcOptions::default()).unwrap();
        // 250 mV of differential drive fully steers the current: cp pulled
        // low by ~0.4 V, cn stays at the rail.
        let vcp = op.voltage(cp);
        let vcn = op.voltage(cn);
        assert!((3.3 - vcp - 0.4).abs() < 0.02, "vcp = {vcp}");
        assert!((3.3 - vcn).abs() < 0.02, "vcn = {vcn}");
    }

    #[test]
    fn sweep_vsource_continuation() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let d = nl.node("d");
        nl.vdc("V1", a, Netlist::GROUND, 0.0).unwrap();
        nl.resistor("R1", a, d, 1.0e3).unwrap();
        nl.diode("D1", d, Netlist::GROUND, DiodeModel::new())
            .unwrap();
        let c = nl.compile().unwrap();
        let values: Vec<f64> = (0..8).map(|i| i as f64 * 0.5).collect();
        let sols = sweep_vsource(&c, "V1", &values, &DcOptions::default()).unwrap();
        assert_eq!(sols.len(), values.len());
        // Diode voltage saturates near 0.9 V while the source keeps rising.
        let last = sols.last().unwrap().voltage(d);
        assert!((0.85..1.0).contains(&last), "vd = {last}");
        // Monotone in source value.
        for w in sols.windows(2) {
            assert!(w[1].voltage(d) >= w[0].voltage(d) - 1e-9);
        }
    }

    #[test]
    fn easy_circuit_reports_plain_newton() {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.vdc("V1", vin, Netlist::GROUND, 3.3).unwrap();
        nl.resistor("R1", vin, out, 1.0e3).unwrap();
        nl.resistor("R2", out, Netlist::GROUND, 2.0e3).unwrap();
        let c = nl.compile().unwrap();
        let op = operating_point(&c, &DcOptions::default()).unwrap();
        let report = op.report();
        assert_eq!(report.succeeded, Some(RecoveryRung::Newton));
        assert!(!report.escalated());
        assert_eq!(report.attempts.len(), 1);
        assert!(report.total_iterations() > 0);
        assert!(report.summary().contains("newton"));
    }

    #[test]
    fn starved_newton_escalates_and_still_converges() {
        // With a 3-iteration budget per attempt, plain Newton cannot settle
        // the nonlinear bias network; a homotopy rung must finish the job.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let d = nl.node("d");
        nl.vdc("V1", a, Netlist::GROUND, 3.3).unwrap();
        nl.resistor("R1", a, d, 6.0e3).unwrap();
        nl.diode("D1", d, Netlist::GROUND, DiodeModel::new())
            .unwrap();
        let c = nl.compile().unwrap();
        let opts = DcOptions {
            max_iterations: 3,
            ..DcOptions::default()
        };
        let op = operating_point(&c, &opts).unwrap();
        let report = op.report();
        assert!(
            report.escalated(),
            "expected escalation: {}",
            report.summary()
        );
        assert!(report.attempts.len() > 1);
        assert!((0.8..1.0).contains(&op.voltage(d)));
    }

    #[test]
    fn failure_embeds_report_in_error() {
        let report = {
            let mut r = ConvergenceReport::default();
            r.record(
                RecoveryRung::Newton,
                &NewtonRun {
                    iterations: 150,
                    worst_delta: 2.5,
                    worst_index: 1,
                    converged: false,
                },
            );
            r
        };
        assert!(report.summary().starts_with("no convergence"));
        let err = Error::DcNoConvergence {
            iterations: report.total_iterations(),
            residual: report.worst_residual,
            report: Some(Box::new(report)),
        };
        let msg = err.to_string();
        assert!(msg.contains("no convergence after 1 rungs"), "{msg}");
    }

    #[test]
    fn worst_node_name_maps_back_to_netlist() {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        nl.vdc("V1", vin, Netlist::GROUND, 1.0).unwrap();
        nl.resistor("R1", vin, Netlist::GROUND, 1.0e3).unwrap();
        let c = nl.compile().unwrap();
        let mut r = ConvergenceReport::default();
        r.record(
            RecoveryRung::Newton,
            &NewtonRun {
                iterations: 5,
                worst_delta: 1.0,
                worst_index: vin.unknown().unwrap(),
                converged: false,
            },
        );
        assert_eq!(r.worst_node_name(&c), Some("vin"));
    }

    #[test]
    fn sweep_rejects_non_vsource() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R1", a, Netlist::GROUND, 1.0).unwrap();
        nl.vdc("V1", a, Netlist::GROUND, 1.0).unwrap();
        let c = nl.compile().unwrap();
        assert!(sweep_vsource(&c, "R1", &[1.0], &DcOptions::default()).is_err());
    }
}
