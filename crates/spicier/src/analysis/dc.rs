//! DC operating point and DC sweeps.
//!
//! The solver runs plain Newton–Raphson first; when that fails it falls
//! back to `gmin` stepping (a conductance homotopy) and then source
//! stepping, the same escalation sequence SPICE uses.

use super::mna::{Assembler, EvalMode};
use crate::error::Error;
use crate::linalg::{AutoSolver, Solver, Triplets};
use crate::netlist::{Circuit, NodeId};

/// Options for the DC operating-point solver.
#[derive(Debug, Clone, PartialEq)]
pub struct DcOptions {
    /// Maximum Newton iterations per attempt.
    pub max_iterations: usize,
    /// Absolute node-voltage convergence tolerance, volts.
    pub abstol_v: f64,
    /// Absolute branch-current convergence tolerance, amperes.
    pub abstol_i: f64,
    /// Relative convergence tolerance.
    pub reltol: f64,
    /// Final gmin left in the circuit, siemens.
    pub gmin: f64,
}

impl Default for DcOptions {
    fn default() -> Self {
        Self {
            max_iterations: 150,
            abstol_v: 1.0e-6,
            abstol_i: 1.0e-9,
            reltol: 1.0e-3,
            gmin: 1.0e-12,
        }
    }
}

/// A converged DC solution.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    n_nodes: usize,
    x: Vec<f64>,
}

impl DcSolution {
    /// Voltage of `node`, volts.
    pub fn voltage(&self, node: NodeId) -> f64 {
        match node.unknown() {
            Some(i) => self.x[i],
            None => 0.0,
        }
    }

    /// Branch current of the `k`-th branch element (voltage sources and
    /// inductors in netlist order), amperes.
    pub fn branch_current(&self, k: usize) -> f64 {
        self.x[self.n_nodes + k]
    }

    /// The raw unknown vector (node voltages then branch currents).
    pub fn unknowns(&self) -> &[f64] {
        &self.x
    }

    /// Consumes the solution, returning the unknown vector.
    pub fn into_unknowns(self) -> Vec<f64> {
        self.x
    }
}

/// Runs one Newton–Raphson attempt from `x`, in place.
///
/// Returns the number of iterations used.
pub(crate) fn newton(
    assembler: &mut Assembler<'_>,
    mode: &EvalMode,
    x: &mut [f64],
    opts: &DcOptions,
    solver: &mut AutoSolver,
    triplets: &mut Triplets,
    rhs: &mut Vec<f64>,
) -> Result<usize, Error> {
    let n_nodes = assembler.circuit().node_unknowns();
    let mut worst = f64::INFINITY;
    for iter in 0..opts.max_iterations {
        assembler.assemble(x, mode, triplets, rhs);
        solver.solve_in_place(triplets, rhs)?;
        let mut converged = true;
        worst = 0.0;
        for (i, (&new, old)) in rhs.iter().zip(x.iter()).enumerate() {
            let abstol = if i < n_nodes {
                opts.abstol_v
            } else {
                opts.abstol_i
            };
            let tol = abstol + opts.reltol * new.abs().max(old.abs());
            let delta = (new - old).abs();
            if delta > tol {
                converged = false;
            }
            worst = worst.max(delta);
        }
        x.copy_from_slice(rhs);
        if converged && !assembler.was_limited() && iter > 0 {
            return Ok(iter + 1);
        }
    }
    Err(Error::DcNoConvergence {
        iterations: opts.max_iterations,
        residual: worst,
    })
}

/// Computes the DC operating point of `circuit`.
///
/// # Errors
///
/// Returns [`Error::DcNoConvergence`] when Newton, gmin stepping and source
/// stepping all fail, or [`Error::SingularMatrix`] for structurally broken
/// circuits.
pub fn operating_point(circuit: &Circuit, opts: &DcOptions) -> Result<DcSolution, Error> {
    let mut assembler = Assembler::new(circuit);
    operating_point_with(circuit, opts, &mut assembler).map(|x| DcSolution {
        n_nodes: circuit.node_unknowns(),
        x,
    })
}

/// Operating point reusing an existing assembler (so transient can keep the
/// junction-limiting state it seeds).
pub(crate) fn operating_point_with(
    circuit: &Circuit,
    opts: &DcOptions,
    assembler: &mut Assembler<'_>,
) -> Result<Vec<f64>, Error> {
    let dim = circuit.dim();
    let mut solver = AutoSolver::new();
    let mut triplets = Triplets::new(dim);
    let mut rhs = Vec::with_capacity(dim);

    // 1. Plain Newton from a zero start.
    let mut x = vec![0.0; dim];
    assembler.reset_junctions(&x);
    if newton(
        assembler,
        &EvalMode::dc(opts.gmin),
        &mut x,
        opts,
        &mut solver,
        &mut triplets,
        &mut rhs,
    )
    .is_ok()
    {
        return Ok(x);
    }

    // 2. gmin stepping: converge with a heavy conductance blanket, then
    //    relax it decade by decade.
    let mut x = vec![0.0; dim];
    assembler.reset_junctions(&x);
    let mut gmin = 1.0e-2;
    let mut gmin_ok = true;
    while gmin >= opts.gmin {
        let mode = EvalMode::dc(gmin);
        if newton(
            assembler,
            &mode,
            &mut x,
            opts,
            &mut solver,
            &mut triplets,
            &mut rhs,
        )
        .is_err()
        {
            gmin_ok = false;
            break;
        }
        if gmin == opts.gmin {
            return Ok(x);
        }
        gmin = (gmin / 10.0).max(opts.gmin);
    }
    let _ = gmin_ok;

    // 3. Source stepping: ramp independent sources from 10% to 100%.
    let mut x = vec![0.0; dim];
    assembler.reset_junctions(&x);
    let mut scale = 0.1;
    let mut last_err = Error::DcNoConvergence {
        iterations: opts.max_iterations,
        residual: f64::NAN,
    };
    let mut step = 0.1;
    while scale <= 1.0 + 1e-12 {
        let mode = EvalMode {
            source_scale: scale,
            ..EvalMode::dc(opts.gmin)
        };
        let mut attempt = x.clone();
        match newton(
            assembler,
            &mode,
            &mut attempt,
            opts,
            &mut solver,
            &mut triplets,
            &mut rhs,
        ) {
            Ok(_) => {
                x = attempt;
                if (scale - 1.0).abs() < 1e-12 {
                    return Ok(x);
                }
                scale = (scale + step).min(1.0);
            }
            Err(e) => {
                last_err = e;
                step /= 2.0;
                if step < 1.0e-3 {
                    return Err(last_err);
                }
                scale = (scale - step).max(step);
            }
        }
    }
    Err(last_err)
}

/// Sweeps the value of a DC voltage source and records the operating point
/// at each setting, using the previous solution as the next starting guess
/// (continuation) — this is what the hysteresis experiment of the paper's
/// Figure 12 needs, because the comparator's state depends on the sweep
/// direction.
///
/// # Errors
///
/// Fails if any point fails to converge.
pub fn sweep_vsource(
    circuit: &Circuit,
    source: &str,
    values: &[f64],
    opts: &DcOptions,
) -> Result<Vec<DcSolution>, Error> {
    // Verify the element exists and is a voltage source up front.
    match circuit.netlist().element(source)? {
        crate::netlist::Element::VoltageSource { .. } => {}
        other => {
            return Err(Error::InvalidValue {
                element: source.to_string(),
                reason: format!("expected a voltage source, found {}", other.type_tag()),
            })
        }
    }
    let mut results = Vec::with_capacity(values.len());
    let mut previous: Option<Vec<f64>> = None;
    for &v in values {
        // Rebuild the netlist with the new source value.
        let mut nl = circuit.netlist().clone();
        let (p, n) = match nl.element(source)? {
            crate::netlist::Element::VoltageSource { p, n, .. } => (*p, *n),
            _ => unreachable!("validated above"),
        };
        nl.remove_element(source)?;
        nl.vdc(source, p, n, v)?;
        let swept = nl.compile()?;
        let mut assembler = Assembler::new(&swept);
        let x = match &previous {
            Some(prev) => {
                // Continuation: start Newton from the previous solution.
                let mut x = prev.clone();
                assembler.reset_junctions(&x);
                let mut solver = AutoSolver::new();
                let mut triplets = Triplets::new(swept.dim());
                let mut rhs = Vec::new();
                match newton(
                    &mut assembler,
                    &EvalMode::dc(opts.gmin),
                    &mut x,
                    opts,
                    &mut solver,
                    &mut triplets,
                    &mut rhs,
                ) {
                    Ok(_) => x,
                    Err(_) => operating_point_with(&swept, opts, &mut assembler)?,
                }
            }
            None => operating_point_with(&swept, opts, &mut assembler)?,
        };
        previous = Some(x.clone());
        results.push(DcSolution {
            n_nodes: swept.node_unknowns(),
            x,
        });
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{BjtModel, DiodeModel};
    use crate::netlist::Netlist;

    #[test]
    fn divider() {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.vdc("V1", vin, Netlist::GROUND, 3.3).unwrap();
        nl.resistor("R1", vin, out, 1.0e3).unwrap();
        nl.resistor("R2", out, Netlist::GROUND, 2.0e3).unwrap();
        let c = nl.compile().unwrap();
        let op = operating_point(&c, &DcOptions::default()).unwrap();
        assert!((op.voltage(out) - 2.2).abs() < 1e-6);
        assert!((op.voltage(vin) - 3.3).abs() < 1e-9);
        assert!((op.voltage(Netlist::GROUND)).abs() == 0.0);
    }

    #[test]
    fn diode_forward_drop() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let d = nl.node("d");
        nl.vdc("V1", a, Netlist::GROUND, 3.3).unwrap();
        nl.resistor("R1", a, d, 6.0e3).unwrap();
        nl.diode("D1", d, Netlist::GROUND, DiodeModel::new())
            .unwrap();
        let c = nl.compile().unwrap();
        let op = operating_point(&c, &DcOptions::default()).unwrap();
        let vd = op.voltage(d);
        assert!((0.8..1.0).contains(&vd), "diode drop {vd}");
        // Current through R1 matches the diode law.
        let i = (3.3 - vd) / 6.0e3;
        let model_v = DiodeModel::new().forward_voltage(i);
        assert!((vd - model_v).abs() < 1e-3);
    }

    #[test]
    fn bjt_current_mirror_ish_bias() {
        // Current-source transistor with emitter degeneration, as in the
        // tail of a CML gate.
        let mut nl = Netlist::new();
        let vcc = nl.node("vcc");
        let b = nl.node("b");
        let col = nl.node("c");
        let e = nl.node("e");
        nl.vdc("VCC", vcc, Netlist::GROUND, 3.3).unwrap();
        nl.vdc("VB", b, Netlist::GROUND, 1.3).unwrap();
        nl.resistor("RC", vcc, col, 1.0e3).unwrap();
        nl.resistor("RE", e, Netlist::GROUND, 1.0e3).unwrap();
        nl.bjt("Q1", col, b, e, BjtModel::fast_npn()).unwrap();
        let c = nl.compile().unwrap();
        let op = operating_point(&c, &DcOptions::default()).unwrap();
        // IE ≈ (1.3 - 0.9)/1k = 0.4 mA.
        let ie = op.voltage(e) / 1.0e3;
        assert!((0.3e-3..0.5e-3).contains(&ie), "tail current {ie}");
        // Collector resistor sees almost the same current.
        let ic = (3.3 - op.voltage(col)) / 1.0e3;
        assert!((ic - ie).abs() < 0.05 * ie);
    }

    #[test]
    fn differential_pair_steers_current() {
        let mut nl = Netlist::new();
        let vcc = nl.node("vcc");
        let bp = nl.node("bp");
        let bn = nl.node("bn");
        let cp = nl.node("cp");
        let cn = nl.node("cn");
        let tail = nl.node("tail");
        nl.vdc("VCC", vcc, Netlist::GROUND, 3.3).unwrap();
        nl.vdc("VBP", bp, Netlist::GROUND, 2.0).unwrap();
        nl.vdc("VBN", bn, Netlist::GROUND, 1.75).unwrap();
        nl.resistor("RCP", vcc, cp, 1.0e3).unwrap();
        nl.resistor("RCN", vcc, cn, 1.0e3).unwrap();
        nl.bjt("Q1", cp, bp, tail, BjtModel::fast_npn()).unwrap();
        nl.bjt("Q2", cn, bn, tail, BjtModel::fast_npn()).unwrap();
        nl.idc("IT", tail, Netlist::GROUND, 0.4e-3).unwrap();
        let c = nl.compile().unwrap();
        let op = operating_point(&c, &DcOptions::default()).unwrap();
        // 250 mV of differential drive fully steers the current: cp pulled
        // low by ~0.4 V, cn stays at the rail.
        let vcp = op.voltage(cp);
        let vcn = op.voltage(cn);
        assert!((3.3 - vcp - 0.4).abs() < 0.02, "vcp = {vcp}");
        assert!((3.3 - vcn).abs() < 0.02, "vcn = {vcn}");
    }

    #[test]
    fn sweep_vsource_continuation() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let d = nl.node("d");
        nl.vdc("V1", a, Netlist::GROUND, 0.0).unwrap();
        nl.resistor("R1", a, d, 1.0e3).unwrap();
        nl.diode("D1", d, Netlist::GROUND, DiodeModel::new())
            .unwrap();
        let c = nl.compile().unwrap();
        let values: Vec<f64> = (0..8).map(|i| i as f64 * 0.5).collect();
        let sols = sweep_vsource(&c, "V1", &values, &DcOptions::default()).unwrap();
        assert_eq!(sols.len(), values.len());
        // Diode voltage saturates near 0.9 V while the source keeps rising.
        let last = sols.last().unwrap().voltage(d);
        assert!((0.85..1.0).contains(&last), "vd = {last}");
        // Monotone in source value.
        for w in sols.windows(2) {
            assert!(w[1].voltage(d) >= w[0].voltage(d) - 1e-9);
        }
    }

    #[test]
    fn sweep_rejects_non_vsource() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R1", a, Netlist::GROUND, 1.0).unwrap();
        nl.vdc("V1", a, Netlist::GROUND, 1.0).unwrap();
        let c = nl.compile().unwrap();
        assert!(sweep_vsource(&c, "R1", &[1.0], &DcOptions::default()).is_err());
    }
}
