//! Modified nodal analysis: device stamps shared by the DC and transient
//! engines.
//!
//! The assembler produces, for a given iterate `x`, the linearized system
//! `A·x_new = b` in SPICE's companion-model form: each nonlinear device is
//! replaced by its tangent conductances plus a constant current source,
//! each charge-storage element by the conductance/current companion of the
//! active integration method. Junction-voltage limiting (`pnjlim`) is
//! applied inside the assembly so the Newton loop above stays generic.

use crate::devices::{pnjlim, BjtBatch, BjtEval, BjtModel};
use crate::linalg::{AutoSolver, Triplets, EXPERIMENT_DENSE_CUTOFF};
use crate::netlist::{Circuit, Element, NodeId};
use crate::VT_300K;

/// Reusable scratch for the assemble–solve inner loop: the linear solver
/// (with its cached stamp-slot maps and factorization pattern), the triplet
/// accumulator, and the right-hand-side vector.
///
/// The refactorization fast path lives inside the solver, keyed on the
/// stamp sequence — so the win comes from passing *one* workspace through
/// consecutive solves of the same circuit: every rung of the DC recovery
/// ladder, every Newton iteration of a transient run, every point of a
/// source sweep, or every corner a sweep worker processes.
#[derive(Debug)]
pub struct SolveWorkspace {
    /// Linear solver, dense or sparse by system size. Pinned to
    /// [`EXPERIMENT_DENSE_CUTOFF`] so published experiment baselines keep
    /// seeing the same kernel (and the same rounding) they were recorded
    /// with, independent of the measured-crossover default.
    pub solver: AutoSolver,
    /// Triplet accumulator reused across assemblies.
    pub triplets: Triplets,
    /// Right-hand side on entry to a solve, solution on exit.
    pub rhs: Vec<f64>,
}

impl Default for SolveWorkspace {
    fn default() -> Self {
        Self::new(0)
    }
}

impl SolveWorkspace {
    /// Creates a workspace sized for a `dim`-unknown system.
    pub fn new(dim: usize) -> Self {
        Self {
            solver: AutoSolver::with_cutoff(EXPERIMENT_DENSE_CUTOFF),
            triplets: Triplets::new(dim),
            rhs: Vec::with_capacity(dim),
        }
    }

    /// Creates a workspace sized for `circuit`.
    pub fn for_circuit(circuit: &Circuit) -> Self {
        Self::new(circuit.dim())
    }
}

/// Numerical integration method for charge-storage elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Method {
    /// First-order implicit Euler — L-stable, used right after breakpoints.
    BackwardEuler,
    /// Second-order trapezoidal rule — the default workhorse.
    #[default]
    Trapezoidal,
}

/// How charge-storage elements are treated during one assembly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Integration {
    /// DC: capacitors open, inductors short.
    Dc,
    /// Transient step of size `h` ending at the assembly's `time`.
    Step {
        /// Integration method for this step.
        method: Method,
        /// Step size, seconds.
        h: f64,
    },
}

/// Assembly-time context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalMode {
    /// Charge treatment.
    pub integ: Integration,
    /// Absolute time at the end of the step (sources are evaluated here).
    pub time: f64,
    /// Conductance added from every node to ground for convergence aid.
    pub gmin: f64,
    /// Scale factor on independent sources (source-stepping homotopy).
    pub source_scale: f64,
}

impl EvalMode {
    /// DC assembly at full source strength.
    pub fn dc(gmin: f64) -> Self {
        Self {
            integ: Integration::Dc,
            time: 0.0,
            gmin,
            source_scale: 1.0,
        }
    }
}

/// Committed state of one charge-storage site (capacitor, junction, or the
/// flux/voltage pair of an inductor).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChargeState {
    /// Stored charge (or flux for inductors), coulombs (webers).
    pub q: f64,
    /// Branch current (or branch voltage for inductors) at the last
    /// accepted time point.
    pub i: f64,
}

/// Per-circuit assembler holding device state between iterations/steps.
#[derive(Debug)]
pub struct Assembler<'c> {
    circuit: &'c Circuit,
    n_nodes: usize,
    /// Branch unknown index per element (usize::MAX = none).
    branch_index: Vec<usize>,
    /// Committed charge states (last accepted step).
    charges: Vec<ChargeState>,
    /// Scratch charge states (current Newton iterate).
    scratch: Vec<ChargeState>,
    charge_offset: Vec<usize>,
    /// Junction voltages from the previous Newton iteration (limiting).
    junctions: Vec<f64>,
    junction_offset: Vec<usize>,
    /// Whether the last assembly clamped any junction voltage.
    limited: bool,
    /// Struct-of-arrays batch of every BJT in element order: all
    /// transistor evaluations for one Newton iteration run in one pass
    /// over parallel arrays before the stamping loop (bit-identical per
    /// lane to the scalar `BjtModel::eval`, see `devices::batch`).
    bjt_batch: BjtBatch,
}

fn charge_slots(e: &Element) -> usize {
    match e {
        Element::Capacitor { .. } | Element::Inductor { .. } | Element::Diode { .. } => 1,
        Element::Bjt { .. } => 2,
        _ => 0,
    }
}

fn junction_slots(e: &Element) -> usize {
    match e {
        Element::Diode { .. } => 1,
        Element::Bjt { .. } => 2,
        _ => 0,
    }
}

/// Voltage of `node` in the unknown vector (`0.0` for ground).
#[inline]
fn v_of(x: &[f64], node: NodeId) -> f64 {
    match node.unknown() {
        Some(i) => x[i],
        None => 0.0,
    }
}

impl<'c> Assembler<'c> {
    /// Creates an assembler with zeroed device state.
    pub fn new(circuit: &'c Circuit) -> Self {
        let n_nodes = circuit.node_unknowns();
        let elements = circuit.element_slice();
        let mut branch_index = vec![usize::MAX; elements.len()];
        for (b, &e_idx) in circuit.branch_elements().iter().enumerate() {
            branch_index[e_idx] = n_nodes + b;
        }
        let mut charge_offset = Vec::with_capacity(elements.len());
        let mut junction_offset = Vec::with_capacity(elements.len());
        let mut n_charges = 0;
        let mut n_junctions = 0;
        let mut bjt_batch = BjtBatch::new();
        for (_, e) in elements {
            charge_offset.push(n_charges);
            junction_offset.push(n_junctions);
            n_charges += charge_slots(e);
            n_junctions += junction_slots(e);
            if let Element::Bjt { model, .. } = e {
                bjt_batch.push_model(model);
            }
        }
        Self {
            circuit,
            n_nodes,
            branch_index,
            charges: vec![ChargeState::default(); n_charges],
            scratch: vec![ChargeState::default(); n_charges],
            charge_offset,
            junction_offset,
            junctions: vec![0.0; n_junctions],
            limited: false,
            bjt_batch,
        }
    }

    /// The circuit being assembled.
    pub fn circuit(&self) -> &Circuit {
        self.circuit
    }

    /// Whether the previous [`assemble`](Self::assemble) call clamped any
    /// junction voltage (convergence must not be declared on such an
    /// iteration).
    pub fn was_limited(&self) -> bool {
        self.limited
    }

    /// Accepts the scratch charge states computed by the last assembly as
    /// the committed state (call when a timestep is accepted).
    pub fn commit_charges(&mut self) {
        self.charges.copy_from_slice(&self.scratch);
    }

    /// Initializes committed charge states from a converged DC solution
    /// (zero charging currents — steady state).
    pub fn init_charges(&mut self, x: &[f64]) {
        for (e_idx, (_, element)) in self.circuit.element_slice().iter().enumerate() {
            let off = self.charge_offset[e_idx];
            match element {
                Element::Capacitor { p, n, value } => {
                    let v = v_of(x, *p) - v_of(x, *n);
                    self.charges[off] = ChargeState {
                        q: value * v,
                        i: 0.0,
                    };
                }
                Element::Inductor { .. } => {
                    let branch = self.branch_index[e_idx];
                    let i = x[branch];
                    if let Element::Inductor { value, .. } = element {
                        self.charges[off] = ChargeState {
                            q: value * i,
                            i: 0.0,
                        };
                    }
                }
                Element::Diode {
                    anode,
                    cathode,
                    model,
                } => {
                    let vd = v_of(x, *anode) - v_of(x, *cathode);
                    let eval = model.eval(vd);
                    self.charges[off] = ChargeState { q: eval.q, i: 0.0 };
                }
                Element::Bjt {
                    collector,
                    base,
                    emitter,
                    model,
                } => {
                    let s = model.polarity.sign();
                    let vbe = s * (v_of(x, *base) - v_of(x, *emitter));
                    let vbc = s * (v_of(x, *base) - v_of(x, *collector));
                    let eval = model.eval(vbe, vbc);
                    self.charges[off] = ChargeState {
                        q: eval.qbe,
                        i: 0.0,
                    };
                    self.charges[off + 1] = ChargeState {
                        q: eval.qbc,
                        i: 0.0,
                    };
                }
                _ => {}
            }
        }
        self.reset_junctions(x);
    }

    /// Seeds the junction-limiting memory from an unknown vector.
    pub fn reset_junctions(&mut self, x: &[f64]) {
        for (e_idx, (_, element)) in self.circuit.element_slice().iter().enumerate() {
            let off = self.junction_offset[e_idx];
            match element {
                Element::Diode { anode, cathode, .. } => {
                    self.junctions[off] = v_of(x, *anode) - v_of(x, *cathode);
                }
                Element::Bjt {
                    collector,
                    base,
                    emitter,
                    model,
                } => {
                    let s = model.polarity.sign();
                    self.junctions[off] = s * (v_of(x, *base) - v_of(x, *emitter));
                    self.junctions[off + 1] = s * (v_of(x, *base) - v_of(x, *collector));
                }
                _ => {}
            }
        }
    }

    /// Assembles `A·x_new = b` linearized at `x` into `triplets`/`rhs`.
    pub fn assemble(
        &mut self,
        x: &[f64],
        mode: &EvalMode,
        triplets: &mut Triplets,
        rhs: &mut Vec<f64>,
    ) {
        let dim = self.circuit.dim();
        triplets.reset(dim);
        rhs.clear();
        rhs.resize(dim, 0.0);
        self.limited = false;

        // gmin from every node to ground.
        if mode.gmin > 0.0 {
            for i in 0..self.n_nodes {
                triplets.add(i, i, mode.gmin);
            }
        }

        // Batched BJT phase: gather + limit every transistor's junction
        // voltages (limiting is per-slot and the `limited` flag an OR, so
        // hoisting it out of the stamping loop is value-identical), then
        // evaluate all devices in one SoA pass. The stamping loop below
        // reads the results back by lane.
        if !self.bjt_batch.is_empty() {
            let mut lane = 0usize;
            for (e_idx, (_, element)) in self.circuit.element_slice().iter().enumerate() {
                if let Element::Bjt {
                    collector,
                    base,
                    emitter,
                    model,
                } = element
                {
                    let s = model.polarity.sign();
                    let j_off = self.junction_offset[e_idx];
                    let vcrit = model.vcrit();
                    let vbe_raw = s * (v_of(x, *base) - v_of(x, *emitter));
                    let vbc_raw = s * (v_of(x, *base) - v_of(x, *collector));
                    let vbe = self.limit_junction(j_off, vbe_raw, vcrit, VT_300K);
                    let vbc = self.limit_junction(j_off + 1, vbc_raw, vcrit, VT_300K);
                    self.bjt_batch.set_bias(lane, vbe, vbc);
                    lane += 1;
                }
            }
            self.bjt_batch.eval_all();
        }

        let mut bjt_lane = 0usize;
        for (e_idx, (_, element)) in self.circuit.element_slice().iter().enumerate() {
            match element {
                Element::Resistor { p, n, value } => {
                    stamp_conductance(triplets, *p, *n, 1.0 / value);
                }
                Element::Capacitor { p, n, value } => {
                    if let Integration::Step { method, h } = mode.integ {
                        let v = v_of(x, *p) - v_of(x, *n);
                        let off = self.charge_offset[e_idx];
                        let old = self.charges[off];
                        let new = stamp_charge(
                            triplets,
                            rhs,
                            *p,
                            *n,
                            value * v,
                            *value,
                            v,
                            old,
                            method,
                            h,
                        );
                        self.scratch[off] = new;
                    }
                }
                Element::Inductor { p, n, value } => {
                    let branch = self.branch_index[e_idx];
                    // Branch current unknown i; KCL coupling.
                    stamp_branch_kcl(triplets, *p, *n, branch);
                    match mode.integ {
                        Integration::Dc => {
                            // Short: v_p - v_n = 0.
                            stamp_branch_voltage(triplets, *p, *n, branch);
                        }
                        Integration::Step { method, h } => {
                            // v = L di/dt companion.
                            stamp_branch_voltage(triplets, *p, *n, branch);
                            let off = self.charge_offset[e_idx];
                            let old = self.charges[off];
                            let i_now = x[branch];
                            match method {
                                Method::BackwardEuler => {
                                    // v - (L/h)·i = -(L/h)·i_old
                                    let leq = value / h;
                                    triplets.add(branch, branch, -leq);
                                    rhs[branch] = -leq * old.q / value;
                                }
                                Method::Trapezoidal => {
                                    // v - (2L/h)·i = -(2L/h)·i_old - v_old
                                    let leq = 2.0 * value / h;
                                    triplets.add(branch, branch, -leq);
                                    rhs[branch] = -leq * old.q / value - old.i;
                                }
                            }
                            // Track flux and branch voltage for the next step.
                            let v_now = v_of(x, *p) - v_of(x, *n);
                            self.scratch[off] = ChargeState {
                                q: value * i_now,
                                i: v_now,
                            };
                        }
                    }
                }
                Element::VoltageSource { p, n, wave } => {
                    let branch = self.branch_index[e_idx];
                    stamp_branch_kcl(triplets, *p, *n, branch);
                    stamp_branch_voltage(triplets, *p, *n, branch);
                    rhs[branch] = mode.source_scale * wave.value_at(mode.time);
                }
                Element::CurrentSource { p, n, wave } => {
                    let i = mode.source_scale * wave.value_at(mode.time);
                    stamp_current(rhs, *p, *n, i);
                }
                Element::Diode {
                    anode,
                    cathode,
                    model,
                } => {
                    let j_off = self.junction_offset[e_idx];
                    let vd_raw = v_of(x, *anode) - v_of(x, *cathode);
                    let vd = self.limit_junction(j_off, vd_raw, model.vcrit(), model.n * VT_300K);
                    let eval = model.eval(vd);
                    stamp_conductance(triplets, *anode, *cathode, eval.gd);
                    stamp_current(rhs, *anode, *cathode, eval.id - eval.gd * vd);
                    if let Integration::Step { method, h } = mode.integ {
                        let off = self.charge_offset[e_idx];
                        let old = self.charges[off];
                        let new = stamp_charge(
                            triplets, rhs, *anode, *cathode, eval.q, eval.c, vd, old, method, h,
                        );
                        self.scratch[off] = new;
                    }
                }
                Element::Bjt {
                    collector,
                    base,
                    emitter,
                    model,
                } => {
                    let j_off = self.junction_offset[e_idx];
                    let vbe = self.junctions[j_off];
                    let vbc = self.junctions[j_off + 1];
                    let eval = self.bjt_batch.eval_of(bjt_lane);
                    bjt_lane += 1;
                    self.stamp_bjt(
                        mode, triplets, rhs, e_idx, *collector, *base, *emitter, model, vbe, vbc,
                        eval,
                    );
                }
                Element::Vcvs { p, n, cp, cn, gain } => {
                    let branch = self.branch_index[e_idx];
                    stamp_branch_kcl(triplets, *p, *n, branch);
                    // Constitutive row: v_p − v_n − gain·(v_cp − v_cn) = 0.
                    stamp_branch_voltage(triplets, *p, *n, branch);
                    if let Some(i) = cp.unknown() {
                        triplets.add(branch, i, -gain);
                    }
                    if let Some(j) = cn.unknown() {
                        triplets.add(branch, j, *gain);
                    }
                }
                Element::Vccs { p, n, cp, cn, gm } => {
                    // Current gm·(v_cp − v_cn) leaves node p, enters n.
                    for (row, sign) in [(*p, 1.0), (*n, -1.0)] {
                        if let Some(r) = row.unknown() {
                            if let Some(i) = cp.unknown() {
                                triplets.add(r, i, sign * gm);
                            }
                            if let Some(j) = cn.unknown() {
                                triplets.add(r, j, -sign * gm);
                            }
                        }
                    }
                }
            }
        }
    }

    fn limit_junction(&mut self, slot: usize, v_raw: f64, vcrit: f64, vt: f64) -> f64 {
        let v_old = self.junctions[slot];
        let v_lim = pnjlim(v_raw, v_old, vt, vcrit);
        if (v_lim - v_raw).abs() > 1e-12 {
            self.limited = true;
        }
        self.junctions[slot] = v_lim;
        v_lim
    }

    /// Stamps one BJT from its already-limited junction voltages and its
    /// batched evaluation (see the batched phase in
    /// [`assemble`](Self::assemble)).
    #[allow(clippy::too_many_arguments)]
    fn stamp_bjt(
        &mut self,
        mode: &EvalMode,
        triplets: &mut Triplets,
        rhs: &mut [f64],
        e_idx: usize,
        collector: NodeId,
        base: NodeId,
        emitter: NodeId,
        model: &BjtModel,
        vbe: f64,
        vbc: f64,
        eval: BjtEval,
    ) {
        let s = model.polarity.sign();

        // Actual terminal currents (current into each terminal is positive
        // out of the node for KCL): normalized → actual with polarity sign.
        let ic = s * eval.ic;
        let ib = s * eval.ib;
        // Partials of actual currents w.r.t. actual node voltages
        // (vc, vb, ve). The two sign reflections cancel: s²=1.
        // ic_actual = s·ic(s(vb-ve), s(vb-vc))
        let dic = [
            -eval.dic_dvbc,                // ∂/∂vc
            eval.dic_dvbe + eval.dic_dvbc, // ∂/∂vb
            -eval.dic_dvbe,                // ∂/∂ve
        ];
        let dib = [
            -eval.dib_dvbc,
            eval.dib_dvbe + eval.dib_dvbc,
            -eval.dib_dvbe,
        ];
        let nodes = [collector, base, emitter];

        // Companion constants are formed in *junction* space around the
        // limited voltages, so the expansion point is exactly where the
        // device was evaluated (this matters whenever pnjlim clamps):
        // i(v) ≈ i(v_lim) + J·(v_junction − v_lim).
        let const_c = ic - s * (eval.dic_dvbe * vbe + eval.dic_dvbc * vbc);
        let const_b = ib - s * (eval.dib_dvbe * vbe + eval.dib_dvbc * vbc);

        // Rows: collector current leaves the collector node, etc.; the
        // emitter row is minus the sum of the other two (KCL inside the
        // device).
        let rows: [(NodeId, f64, [f64; 3]); 3] = [
            (collector, const_c, dic),
            (base, const_b, dib),
            (
                emitter,
                -(const_c + const_b),
                [-(dic[0] + dib[0]), -(dic[1] + dib[1]), -(dic[2] + dib[2])],
            ),
        ];
        for (row_node, i_const, partials) in rows {
            let Some(row) = row_node.unknown() else {
                continue;
            };
            for k in 0..3 {
                if let Some(col) = nodes[k].unknown() {
                    triplets.add(row, col, partials[k]);
                }
            }
            rhs[row] -= i_const;
        }

        if let Integration::Step { method, h } = mode.integ {
            let off = self.charge_offset[e_idx];
            // qbe between base and emitter; for PNP the actual charge and
            // branch voltage are both reflected, so the companion is the
            // same with actual charge s·q and actual voltage s·v. The
            // limited junction voltage is used as the expansion point,
            // consistent with the current companion above.
            let vbe_actual = s * vbe;
            let old_be = self.charges[off];
            let new_be = stamp_charge(
                triplets,
                rhs,
                base,
                emitter,
                s * eval.qbe,
                eval.cbe,
                vbe_actual,
                old_be,
                method,
                h,
            );
            self.scratch[off] = new_be;
            let vbc_actual = s * vbc;
            let old_bc = self.charges[off + 1];
            let new_bc = stamp_charge(
                triplets,
                rhs,
                base,
                collector,
                s * eval.qbc,
                eval.cbc,
                vbc_actual,
                old_bc,
                method,
                h,
            );
            self.scratch[off + 1] = new_bc;
        }
    }
}

/// Stamps a conductance `g` between `p` and `n`.
fn stamp_conductance(triplets: &mut Triplets, p: NodeId, n: NodeId, g: f64) {
    if let Some(i) = p.unknown() {
        triplets.add(i, i, g);
    }
    if let Some(j) = n.unknown() {
        triplets.add(j, j, g);
    }
    if let (Some(i), Some(j)) = (p.unknown(), n.unknown()) {
        triplets.add(i, j, -g);
        triplets.add(j, i, -g);
    }
}

/// Stamps a constant current `i` flowing from `p` to `n` *through the
/// device* (i.e. leaving node `p`).
fn stamp_current(rhs: &mut [f64], p: NodeId, n: NodeId, i: f64) {
    if let Some(k) = p.unknown() {
        rhs[k] -= i;
    }
    if let Some(k) = n.unknown() {
        rhs[k] += i;
    }
}

/// Couples a branch current into the KCL rows of its terminal nodes
/// (current flows from `p` through the element to `n`).
fn stamp_branch_kcl(triplets: &mut Triplets, p: NodeId, n: NodeId, branch: usize) {
    if let Some(i) = p.unknown() {
        triplets.add(i, branch, 1.0);
    }
    if let Some(j) = n.unknown() {
        triplets.add(j, branch, -1.0);
    }
}

/// Writes the `v_p − v_n` part of a branch constitutive row.
fn stamp_branch_voltage(triplets: &mut Triplets, p: NodeId, n: NodeId, branch: usize) {
    if let Some(i) = p.unknown() {
        triplets.add(branch, i, 1.0);
    }
    if let Some(j) = n.unknown() {
        triplets.add(branch, j, -1.0);
    }
}

/// Stamps the integration companion of a charge-storage branch between `p`
/// and `n` and returns the scratch state (charge and branch current at the
/// current iterate).
#[allow(clippy::too_many_arguments)]
fn stamp_charge(
    triplets: &mut Triplets,
    rhs: &mut [f64],
    p: NodeId,
    n: NodeId,
    q_new: f64,
    c_new: f64,
    v_now: f64,
    old: ChargeState,
    method: Method,
    h: f64,
) -> ChargeState {
    let (geq, i_now) = match method {
        Method::BackwardEuler => (c_new / h, (q_new - old.q) / h),
        Method::Trapezoidal => (2.0 * c_new / h, 2.0 * (q_new - old.q) / h - old.i),
    };
    stamp_conductance(triplets, p, n, geq);
    stamp_current(rhs, p, n, i_now - geq * v_now);
    ChargeState { q: q_new, i: i_now }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::{AutoSolver, Solver};
    use crate::netlist::Netlist;

    fn solve_linear_dc(circuit: &Circuit) -> Vec<f64> {
        let mut asm = Assembler::new(circuit);
        let x = vec![0.0; circuit.dim()];
        let mut t = Triplets::new(circuit.dim());
        let mut rhs = Vec::new();
        asm.assemble(&x, &EvalMode::dc(1e-12), &mut t, &mut rhs);
        AutoSolver::new().solve_in_place(&t, &mut rhs).unwrap();
        rhs
    }

    #[test]
    fn divider_solves_in_one_linear_step() {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.vdc("V1", vin, Netlist::GROUND, 3.0).unwrap();
        nl.resistor("R1", vin, out, 1.0e3).unwrap();
        nl.resistor("R2", out, Netlist::GROUND, 2.0e3).unwrap();
        let c = nl.compile().unwrap();
        let x = solve_linear_dc(&c);
        let out_idx = out.unknown().unwrap();
        assert!((x[out_idx] - 2.0).abs() < 1e-6);
        // Branch current of V1: (3 V over 3 kΩ) flowing out of the source.
        let branch = c.node_unknowns();
        assert!((x[branch] + 1.0e-3).abs() < 1e-6, "i = {}", x[branch]);
    }

    #[test]
    fn current_source_direction() {
        // 1 mA pushed into node a (p = ground, n = a) across 1 kΩ → +1 V.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.idc("I1", Netlist::GROUND, a, 1.0e-3).unwrap();
        nl.resistor("R1", a, Netlist::GROUND, 1.0e3).unwrap();
        let c = nl.compile().unwrap();
        let x = solve_linear_dc(&c);
        assert!((x[a.unknown().unwrap()] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn capacitor_is_open_in_dc() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vdc("V1", a, Netlist::GROUND, 1.0).unwrap();
        nl.capacitor("C1", a, b, 1e-12).unwrap();
        nl.resistor("R1", b, Netlist::GROUND, 1.0e3).unwrap();
        let c = nl.compile().unwrap();
        let x = solve_linear_dc(&c);
        // b floats to ground through R1 (gmin keeps it defined).
        assert!(x[b.unknown().unwrap()].abs() < 1e-6);
    }

    #[test]
    fn inductor_is_short_in_dc() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vdc("V1", a, Netlist::GROUND, 2.0).unwrap();
        nl.inductor("L1", a, b, 1e-9).unwrap();
        nl.resistor("R1", b, Netlist::GROUND, 1.0e3).unwrap();
        let c = nl.compile().unwrap();
        let x = solve_linear_dc(&c);
        assert!((x[b.unknown().unwrap()] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn charge_companion_backward_euler() {
        // RC step response check of the companion algebra: one BE step.
        // v_c(h) for R=1k, C=1n, V=1: v = V·(1 - 1/(1 + h/RC)) for BE.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vdc("V1", a, Netlist::GROUND, 1.0).unwrap();
        nl.resistor("R1", a, b, 1.0e3).unwrap();
        nl.capacitor("C1", b, Netlist::GROUND, 1.0e-9).unwrap();
        let c = nl.compile().unwrap();
        let mut asm = Assembler::new(&c);
        // Start from uncharged capacitor.
        let x0 = vec![0.0; c.dim()];
        asm.init_charges(&x0);
        let h = 1.0e-6;
        let mode = EvalMode {
            integ: Integration::Step {
                method: Method::BackwardEuler,
                h,
            },
            time: h,
            gmin: 1e-12,
            source_scale: 1.0,
        };
        // The step is linear, so one Newton iteration is exact.
        let mut t = Triplets::new(c.dim());
        let mut rhs = Vec::new();
        asm.assemble(&x0, &mode, &mut t, &mut rhs);
        AutoSolver::new().solve_in_place(&t, &mut rhs).unwrap();
        let vb = rhs[b.unknown().unwrap()];
        let rc = 1.0e3 * 1.0e-9;
        let expected = 1.0 - 1.0 / (1.0 + h / rc);
        assert!(
            (vb - expected).abs() < 1e-9,
            "vb = {vb}, expected {expected}"
        );
    }

    #[test]
    fn bjt_emitter_follower_dc_stamp_is_consistent() {
        // One NR iteration from a good initial guess must keep KCL residual
        // small: check A·x - b ≈ 0 at the solution-ish point by iterating.
        let mut nl = Netlist::new();
        let vcc = nl.node("vcc");
        let b = nl.node("b");
        let e = nl.node("e");
        nl.vdc("VCC", vcc, Netlist::GROUND, 3.3).unwrap();
        nl.vdc("VB", b, Netlist::GROUND, 1.5).unwrap();
        nl.bjt("Q1", vcc, b, e, BjtModel::fast_npn()).unwrap();
        nl.resistor("RE", e, Netlist::GROUND, 1.0e3).unwrap();
        let c = nl.compile().unwrap();
        let mut asm = Assembler::new(&c);
        let mut x = vec![0.0; c.dim()];
        let mut t = Triplets::new(c.dim());
        let mut rhs = Vec::new();
        let mut solver = AutoSolver::new();
        for _ in 0..100 {
            asm.assemble(&x, &EvalMode::dc(1e-12), &mut t, &mut rhs);
            solver.solve_in_place(&t, &mut rhs).unwrap();
            x.copy_from_slice(&rhs);
        }
        let ve = x[e.unknown().unwrap()];
        // Emitter sits one VBE below the base; RE carries ~0.6 mA.
        assert!(
            (0.5..0.75).contains(&ve),
            "emitter follower output ve = {ve}"
        );
    }
}
