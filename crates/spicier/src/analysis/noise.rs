//! Small-signal noise analysis.
//!
//! Computes the output-referred noise voltage spectral density at a chosen
//! node by the adjoint method: one complex solve of the *transposed*
//! system `(G + jωC)ᵀ·y = e_out` per frequency yields the transfer from
//! **every** noise source to the output simultaneously (`|H_k| = |y|` at
//! the source's terminals), so total cost is independent of the number of
//! sources.
//!
//! Modeled sources:
//! * resistors — thermal (Johnson) current noise, `S_i = 4kT/R`;
//! * diodes — shot noise, `S_i = 2q·I_d`;
//! * BJTs — collector shot noise `2q·I_c` (collector–emitter) and base
//!   shot noise `2q·I_b` (base–emitter).
//!
//! Flicker noise is omitted (the paper's detectors integrate over
//! nanoseconds; `1/f` corners sit far below the band of interest).

use super::budget::{BudgetTracker, Phase, RunBudget};
use super::dc::{self, DcOptions};
use super::mna::{Assembler, SolveWorkspace};
use crate::error::Error;
use crate::linalg::complex::{Complex, ComplexDenseMatrix};
use crate::linalg::SolveQuality;
use crate::netlist::{Circuit, Element, NodeId};
use crate::telemetry::{self, TelemetrySummary};
use std::time::Instant;

/// Boltzmann constant, J/K.
pub const BOLTZMANN: f64 = 1.380649e-23;
/// Elementary charge, C.
pub const Q_ELECTRON: f64 = 1.602176634e-19;
/// Analysis temperature, kelvin (matches the device models' 300.15 K).
pub const TEMPERATURE: f64 = 300.15;

/// Options for [`noise_analysis`].
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseOptions {
    /// Node whose noise voltage is computed.
    pub output: NodeId,
    /// Frequencies to evaluate, hertz.
    pub freqs: Vec<f64>,
    /// DC options for the operating point.
    pub dc: DcOptions,
    /// Execution budget for the whole noise call, including its operating
    /// point (this field governs the run, not `dc.budget`).
    pub budget: RunBudget,
}

impl NoiseOptions {
    /// Output noise at `output` over `freqs`.
    pub fn new(output: NodeId, freqs: Vec<f64>) -> Self {
        Self {
            output,
            freqs,
            dc: DcOptions::default(),
            budget: RunBudget::default(),
        }
    }
}

/// Result: output noise voltage PSD per frequency.
#[derive(Debug, Clone)]
pub struct NoiseResult {
    freqs: Vec<f64>,
    /// Output noise voltage PSD, V²/Hz, per frequency.
    psd: Vec<f64>,
    quality: SolveQuality,
    telemetry: TelemetrySummary,
}

/// Equality covers the numerical outcome only; the telemetry rollup is
/// excluded because its wall-clock component differs between otherwise
/// identical runs.
impl PartialEq for NoiseResult {
    fn eq(&self, other: &Self) -> bool {
        self.freqs == other.freqs && self.psd == other.psd && self.quality == other.quality
    }
}

impl NoiseResult {
    /// The frequency grid.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Output noise voltage PSD, V²/Hz.
    pub fn psd(&self) -> &[f64] {
        &self.psd
    }

    /// Worst linear-solve certification across the run: the pessimistic
    /// merge of the operating point's quality and every per-frequency
    /// adjoint solve.
    pub fn quality(&self) -> SolveQuality {
        self.quality
    }

    /// Telemetry rollup for this run (wall time, kernel counters from the
    /// operating point, worst certification across all adjoint solves).
    pub fn telemetry(&self) -> &TelemetrySummary {
        &self.telemetry
    }

    /// RMS noise voltage integrated across the grid (trapezoidal in
    /// frequency), volts.
    pub fn integrated_rms(&self) -> f64 {
        let mut power = 0.0;
        for k in 1..self.freqs.len() {
            let df = self.freqs[k] - self.freqs[k - 1];
            power += 0.5 * (self.psd[k] + self.psd[k - 1]) * df;
        }
        power.sqrt()
    }
}

/// A noise current source between two nodes with a given PSD.
struct NoiseSource {
    p: NodeId,
    n: NodeId,
    /// Current PSD, A²/Hz.
    psd: f64,
}

/// Runs the noise analysis.
///
/// # Errors
///
/// Fails when the operating point does not converge, a frequency point
/// is singular, or `opts.budget` is spent ([`Error::DeadlineExceeded`]
/// with phase `noise`).
pub fn noise_analysis(circuit: &Circuit, opts: &NoiseOptions) -> Result<NoiseResult, Error> {
    let started = Instant::now();
    let _span = telemetry::span("noise");
    let mut tracker = BudgetTracker::new(&opts.budget, Phase::Noise);
    // Operating point (bias-dependent shot noise).
    let mut assembler = Assembler::new(circuit);
    let mut ws = SolveWorkspace::for_circuit(circuit);
    let x_op = dc::operating_point_with(circuit, &opts.dc, &mut assembler, &mut ws, &mut tracker)?;
    let mut quality = ws.solver.last_quality();
    drop(assembler);
    let v_of = |node: NodeId| -> f64 {
        match node.unknown() {
            Some(i) => x_op[i],
            None => 0.0,
        }
    };

    // Collect noise sources at the operating point.
    let four_kt = 4.0 * BOLTZMANN * TEMPERATURE;
    let mut sources = Vec::new();
    for (_, element) in circuit.elements() {
        match element {
            Element::Resistor { p, n, value } => sources.push(NoiseSource {
                p: *p,
                n: *n,
                psd: four_kt / value,
            }),
            Element::Diode {
                anode,
                cathode,
                model,
            } => {
                let id = model.eval(v_of(*anode) - v_of(*cathode)).id.abs();
                sources.push(NoiseSource {
                    p: *anode,
                    n: *cathode,
                    psd: 2.0 * Q_ELECTRON * id,
                });
            }
            Element::Bjt {
                collector,
                base,
                emitter,
                model,
            } => {
                let s = model.polarity.sign();
                let vbe = s * (v_of(*base) - v_of(*emitter));
                let vbc = s * (v_of(*base) - v_of(*collector));
                let eval = model.eval(vbe, vbc);
                sources.push(NoiseSource {
                    p: *collector,
                    n: *emitter,
                    psd: 2.0 * Q_ELECTRON * eval.ic.abs(),
                });
                sources.push(NoiseSource {
                    p: *base,
                    n: *emitter,
                    psd: 2.0 * Q_ELECTRON * eval.ib.abs(),
                });
            }
            _ => {}
        }
    }

    // Reuse the AC linearization by building G and C through the AC module
    // (a zero-amplitude excitation on no source: we only need the matrix,
    // which the adjoint path rebuilds below).
    let (g, c) = super::ac::linearized_matrices(circuit, &x_op, opts.dc.gmin);

    let dim = circuit.dim();
    let out_idx = opts
        .output
        .unknown()
        .ok_or_else(|| Error::InvalidOptions("noise output cannot be ground".to_string()))?;

    let mut psd_out = Vec::with_capacity(opts.freqs.len());
    for (k, &f) in opts.freqs.iter().enumerate() {
        tracker.set_progress(k as f64 / opts.freqs.len().max(1) as f64);
        tracker.check()?;
        let omega = 2.0 * std::f64::consts::PI * f;
        // Adjoint system: transpose of (G + jωC).
        let mut at = ComplexDenseMatrix::zeros(dim);
        for &(r, col, v) in g.entries() {
            at.add(col, r, Complex::real(v));
        }
        for &(r, col, v) in c.entries() {
            at.add(col, r, Complex::imag(omega * v));
        }
        let mut y = vec![Complex::ZERO; dim];
        y[out_idx] = Complex::ONE;
        quality = quality.worst(at.solve_in_place(&mut y)?);
        // Transfer from a current source (p → n) to the output is
        // y[p] − y[n]; superpose powers.
        let mut total = 0.0;
        for src in &sources {
            let yp = match src.p.unknown() {
                Some(i) => y[i],
                None => Complex::ZERO,
            };
            let yn = match src.n.unknown() {
                Some(i) => y[i],
                None => Complex::ZERO,
            };
            let h = (yp - yn).abs();
            total += h * h * src.psd;
        }
        psd_out.push(total);
    }
    let summary = TelemetrySummary {
        wall: started.elapsed(),
        lu: ws.solver.stats(),
        worst_backward_error: Some(quality.backward_error),
        cond_estimate: quality.cond_estimate,
        ..TelemetrySummary::default()
    };
    telemetry::record_summary(&summary);
    Ok(NoiseResult {
        freqs: opts.freqs.clone(),
        psd: psd_out,
        quality,
        telemetry: summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ac::decade_freqs;
    use crate::netlist::Netlist;

    #[test]
    fn resistor_thermal_noise_matches_johnson() {
        // A 1 kΩ resistor to ground: output PSD = 4kTR at low frequency.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R1", a, Netlist::GROUND, 1.0e3).unwrap();
        nl.vdc("VB", a, Netlist::GROUND, 0.0).unwrap();
        // Hmm: a voltage source on the node would short the noise; use a
        // big bias resistor instead to keep the node defined.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R1", a, Netlist::GROUND, 1.0e3).unwrap();
        nl.resistor("RBIG", a, Netlist::GROUND, 1.0e12).unwrap();
        let circuit = nl.compile().unwrap();
        let res = noise_analysis(&circuit, &NoiseOptions::new(a, vec![1.0e3, 1.0e6])).unwrap();
        let expected = 4.0 * BOLTZMANN * TEMPERATURE * 1.0e3;
        for &p in res.psd() {
            assert!(
                (p - expected).abs() < 0.01 * expected,
                "PSD {p:.3e} vs 4kTR {expected:.3e}"
            );
        }
    }

    #[test]
    fn rc_integrated_noise_is_kt_over_c() {
        // The classic: total noise of an RC filter is kT/C, independent of R.
        let kt_over_c = |r: f64, c: f64| -> f64 {
            let mut nl = Netlist::new();
            let a = nl.node("a");
            let b = nl.node("b");
            nl.vdc("V1", a, Netlist::GROUND, 0.0).unwrap();
            nl.resistor("R1", a, b, r).unwrap();
            nl.capacitor("C1", b, Netlist::GROUND, c).unwrap();
            let circuit = nl.compile().unwrap();
            // Integrate far past the pole.
            let f_pole = 1.0 / (2.0 * std::f64::consts::PI * r * c);
            let freqs = decade_freqs(f_pole * 1e-3, f_pole * 1e4, 20);
            let res = noise_analysis(&circuit, &NoiseOptions::new(b, freqs)).unwrap();
            res.integrated_rms()
        };
        let c = 1.0e-12;
        let expected = (BOLTZMANN * TEMPERATURE / c).sqrt(); // ≈ 64 µV at 1 pF
        for r in [1.0e3, 100.0e3] {
            let rms = kt_over_c(r, c);
            assert!(
                (rms - expected).abs() < 0.03 * expected,
                "R = {r}: rms {rms:.3e} vs sqrt(kT/C) {expected:.3e}"
            );
        }
    }

    #[test]
    fn bjt_shot_noise_appears_at_the_collector() {
        // Biased common-emitter stage: collector shot noise through RC
        // dominates → PSD ≈ 2qIc·Rc² + 4kT·Rc at the collector.
        let mut nl = Netlist::new();
        let vcc = nl.node("vcc");
        let b = nl.node("b");
        let c = nl.node("c");
        nl.vdc("VCC", vcc, Netlist::GROUND, 3.3).unwrap();
        nl.vdc("VB", b, Netlist::GROUND, 0.9).unwrap();
        nl.resistor("RC", vcc, c, 1.0e3).unwrap();
        nl.bjt(
            "Q1",
            c,
            b,
            Netlist::GROUND,
            crate::devices::BjtModel::fast_npn(),
        )
        .unwrap();
        let circuit = nl.compile().unwrap();
        let res = noise_analysis(&circuit, &NoiseOptions::new(c, vec![1.0e6])).unwrap();
        // Ic at vbe = 0.9 is ≈ 0.39 mA (the calibration point).
        let ic = 0.39e-3;
        let shot = 2.0 * Q_ELECTRON * ic * 1.0e3 * 1.0e3;
        let thermal = 4.0 * BOLTZMANN * TEMPERATURE * 1.0e3;
        let expected = shot + thermal;
        let p = res.psd()[0];
        assert!(
            (p - expected).abs() < 0.25 * expected,
            "PSD {p:.3e} vs expected {expected:.3e}"
        );
        // Shot noise dominates thermal here by ~30x.
        assert!(p > 5.0 * thermal);
    }

    #[test]
    fn ground_output_is_rejected() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R1", a, Netlist::GROUND, 1.0e3).unwrap();
        nl.vdc("V1", a, Netlist::GROUND, 1.0).unwrap();
        let circuit = nl.compile().unwrap();
        assert!(
            noise_analysis(&circuit, &NoiseOptions::new(Netlist::GROUND, vec![1.0e3])).is_err()
        );
    }
}
