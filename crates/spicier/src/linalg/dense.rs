//! Dense LU factorization with partial pivoting.
//!
//! Used directly for small MNA systems and as the reference oracle for the
//! sparse kernel's tests.

// Index-based loops are kept in these numeric kernels: the indices are
// the mathematical objects (pivot rows, column positions).
#![allow(clippy::needless_range_loop)]

use super::{sparse::LuStats, sparse::Triplets, verify, verify::SolveQuality, Solver};
use crate::error::Error;

/// Smallest pivot magnitude accepted before the matrix is declared singular.
const PIVOT_FLOOR: f64 = 1e-13;

/// A row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Builds a dense matrix by scattering `triplets` (duplicates add).
    pub fn from_triplets(triplets: &Triplets) -> Self {
        let mut m = Self::zeros(triplets.dim());
        for &(r, c, v) in triplets.entries() {
            m.data[r * m.n + c] += v;
        }
        m
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Returns the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.n && col < self.n, "index out of bounds");
        self.data[row * self.n + col]
    }

    /// Adds `value` to the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n && col < self.n, "index out of bounds");
        self.data[row * self.n + col] += value;
    }

    /// Resets all entries to zero without reallocating.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Computes `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "dimension mismatch");
        let mut y = vec![0.0; self.n];
        for r in 0..self.n {
            let row = &self.data[r * self.n..(r + 1) * self.n];
            y[r] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Computes `(‖A‖∞, ‖A‖₁)` — the max row and column absolute sums —
    /// in one pass. Must be called before [`lu_factor`](Self::lu_factor)
    /// overwrites the entries with the factors.
    pub fn norms(&self) -> (f64, f64) {
        let n = self.n;
        let mut row_max = 0.0f64;
        let mut col_sums = vec![0.0f64; n];
        for r in 0..n {
            let mut row_sum = 0.0;
            for c in 0..n {
                let a = self.data[r * n + c].abs();
                row_sum += a;
                col_sums[c] += a;
            }
            row_max = row_max.max(row_sum);
        }
        (row_max, col_sums.iter().fold(0.0f64, |m, &s| m.max(s)))
    }

    /// Factors `self` in place into `P A = L U` with partial pivoting and
    /// returns the row permutation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SingularMatrix`] when no acceptable pivot exists in
    /// some column.
    pub fn lu_factor(&mut self) -> Result<Vec<usize>, Error> {
        let n = self.n;
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Pivot search down column k.
            let mut pivot_row = k;
            let mut pivot_mag = self.data[perm[k] * n + k].abs();
            for r in (k + 1)..n {
                let mag = self.data[perm[r] * n + k].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if pivot_mag < PIVOT_FLOOR {
                return Err(Error::SingularMatrix { column: k });
            }
            perm.swap(k, pivot_row);
            let pk = perm[k];
            let pivot = self.data[pk * n + k];
            for r in (k + 1)..n {
                let pr = perm[r];
                let factor = self.data[pr * n + k] / pivot;
                self.data[pr * n + k] = factor;
                if factor != 0.0 {
                    for c in (k + 1)..n {
                        self.data[pr * n + c] -= factor * self.data[pk * n + c];
                    }
                }
            }
        }
        Ok(perm)
    }

    /// Solves `A x = b` given the factorization produced by
    /// [`lu_factor`](Self::lu_factor); `rhs` holds `b` on entry, `x` on exit.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len() != dim()` or `perm.len() != dim()`.
    pub fn lu_solve(&self, perm: &[usize], rhs: &mut [f64]) {
        let n = self.n;
        assert_eq!(rhs.len(), n, "rhs dimension mismatch");
        assert_eq!(perm.len(), n, "permutation dimension mismatch");
        // Forward substitution with implicit unit diagonal, permuted rows.
        let mut y = vec![0.0; n];
        for r in 0..n {
            let pr = perm[r];
            let mut sum = rhs[pr];
            for c in 0..r {
                sum -= self.data[pr * n + c] * y[c];
            }
            y[r] = sum;
        }
        // Backward substitution.
        for r in (0..n).rev() {
            let pr = perm[r];
            let mut sum = y[r];
            for c in (r + 1)..n {
                sum -= self.data[pr * n + c] * rhs[c];
            }
            rhs[r] = sum / self.data[pr * n + r];
        }
    }

    /// Solves `Aᵀ x = b` given the factorization produced by
    /// [`lu_factor`](Self::lu_factor); `rhs` holds `b` on entry, `x` on
    /// exit. With `P A = L U` this is `Uᵀ z = b`, `Lᵀ w = z`, `x = Pᵀ w`.
    /// Used by the Hager condition estimator.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len() != dim()` or `perm.len() != dim()`.
    pub fn lu_solve_transposed(&self, perm: &[usize], rhs: &mut [f64]) {
        let n = self.n;
        assert_eq!(rhs.len(), n, "rhs dimension mismatch");
        assert_eq!(perm.len(), n, "permutation dimension mismatch");
        // Uᵀ z = b: forward substitution; Uᵀ[r][c] = U[c][r] lives at
        // data[perm[c] * n + r] for c ≤ r.
        let mut z = vec![0.0; n];
        for r in 0..n {
            let mut sum = rhs[r];
            for c in 0..r {
                sum -= self.data[perm[c] * n + r] * z[c];
            }
            z[r] = sum / self.data[perm[r] * n + r];
        }
        // Lᵀ w = z: backward substitution with implicit unit diagonal;
        // Lᵀ[r][c] = L[c][r] lives at data[perm[c] * n + r] for c > r.
        for r in (0..n).rev() {
            let mut sum = z[r];
            for c in (r + 1)..n {
                sum -= self.data[perm[c] * n + r] * z[c];
            }
            z[r] = sum;
        }
        // x = Pᵀ w: logical row r of the permuted system is physical
        // row perm[r].
        for r in 0..n {
            rhs[perm[r]] = z[r];
        }
    }
}

/// Reusable dense solver workspace with a cached stamp-slot map.
///
/// Like the sparse kernel's `StampMap`, the flattened `row * n + col`
/// offsets of the stamp sequence are computed once; repeat calls with the
/// same `(row, col)` sequence scatter through the cached slots without
/// per-entry bounds checks. Scatter order is insertion order either way,
/// so the assembled matrix is bit-identical to the uncached path.
#[derive(Debug, Default)]
pub struct DenseSolver {
    matrix: Option<DenseMatrix>,
    keys: Vec<(u32, u32)>,
    slots: Vec<u32>,
    last_quality: SolveQuality,
    stats: LuStats,
}

impl DenseSolver {
    /// Whether the cached slot map still describes `triplets`' stamp
    /// sequence (same dimension implied by the caller, same keys).
    fn slots_match(&self, triplets: &Triplets) -> bool {
        triplets.len() == self.keys.len()
            && triplets
                .entries()
                .iter()
                .zip(&self.keys)
                .all(|(&(r, c, _), &(kr, kc))| r as u32 == kr && c as u32 == kc)
    }

    /// Certification record of the most recent successful solve.
    pub fn last_quality(&self) -> SolveQuality {
        self.last_quality
    }

    /// Kernel counters (every dense factorization is a "full factor";
    /// the dense path has no cached-pattern refactor).
    pub fn stats(&self) -> LuStats {
        self.stats
    }
}

impl Solver for DenseSolver {
    fn solve_in_place(&mut self, triplets: &Triplets, rhs: &mut [f64]) -> Result<(), Error> {
        let n = triplets.dim();
        let cached = matches!(&self.matrix, Some(m) if m.dim() == n) && self.slots_match(triplets);
        let matrix = match &mut self.matrix {
            Some(m) if m.dim() == n => {
                m.clear();
                m
            }
            slot => slot.insert(DenseMatrix::zeros(n)),
        };
        if cached {
            for (&(_, _, v), &slot) in triplets.entries().iter().zip(&self.slots) {
                matrix.data[slot as usize] += v;
            }
        } else {
            // Triplets::add already bounds-checked every (row, col), so the
            // flattened offsets are valid for an n × n matrix.
            self.keys.clear();
            self.slots.clear();
            for &(r, c, v) in triplets.entries() {
                self.keys.push((r as u32, c as u32));
                self.slots.push((r * n + c) as u32);
                matrix.data[r * n + c] += v;
            }
        }
        // Norms for the certification denominator, while the assembled
        // values are still intact (the factorization overwrites them).
        let (norm_a_inf, norm_a_1) = matrix.norms();
        let perm = matrix.lu_factor()?;
        self.stats.full_factors += 1;
        if crate::chaos::perturb_lu_active() && n > 0 {
            // Chaos drill: corrupt one pivot of the completed
            // factorization. The triangular solves still finish cleanly;
            // only the residual certifier below can notice.
            let k = n / 2;
            matrix.data[perm[k] * n + k] *= 1.0e3;
        }
        let b = rhs.to_vec();
        matrix.lu_solve(&perm, rhs);
        // Triangular-solve tally shared with the certifier's closures,
        // which only get `&self` borrows.
        let solves = std::cell::Cell::new(1usize);
        let matrix: &DenseMatrix = matrix;
        self.last_quality = verify::certify_in_place(
            rhs,
            &b,
            norm_a_inf,
            norm_a_1,
            |x, out| {
                // r = b − A x straight from the triplets: duplicate
                // entries distribute over the mat-vec sum, so this equals
                // the assembled-matrix residual.
                out.copy_from_slice(&b);
                for &(r, c, v) in triplets.entries() {
                    out[r] -= v * x[c];
                }
            },
            |v| {
                matrix.lu_solve(&perm, v);
                solves.set(solves.get() + 1);
                Ok(())
            },
            |v| {
                matrix.lu_solve_transposed(&perm, v);
                solves.set(solves.get() + 1);
                Ok(())
            },
        )?;
        self.stats.solves += solves.get();
        if crate::telemetry::enabled() {
            crate::telemetry::event(
                "dense_solve",
                &[
                    ("dim", n.into()),
                    ("bwerr", self.last_quality.backward_error.into()),
                    (
                        "refinement_steps",
                        self.last_quality.refinement_steps.into(),
                    ),
                ],
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_dense(entries: &[(usize, usize, f64)], n: usize, b: &[f64]) -> Vec<f64> {
        let mut t = Triplets::new(n);
        for &(r, c, v) in entries {
            t.add(r, c, v);
        }
        let mut rhs = b.to_vec();
        DenseSolver::default().solve_in_place(&t, &mut rhs).unwrap();
        rhs
    }

    #[test]
    fn solves_identity() {
        let x = solve_dense(&[(0, 0, 1.0), (1, 1, 1.0)], 2, &[3.0, -4.0]);
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_2x2_with_pivoting_needed() {
        // Zero on the diagonal forces a row swap.
        let x = solve_dense(&[(0, 1, 2.0), (1, 0, 1.0), (1, 1, 1.0)], 2, &[2.0, 4.0]);
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_triplets_accumulate() {
        let x = solve_dense(&[(0, 0, 1.0), (0, 0, 1.0)], 1, &[4.0]);
        assert!((x[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let mut t = Triplets::new(2);
        t.add(0, 0, 1.0);
        t.add(1, 0, 1.0);
        let mut rhs = vec![1.0, 1.0];
        let err = DenseSolver::default()
            .solve_in_place(&t, &mut rhs)
            .unwrap_err();
        assert!(matches!(err, Error::SingularMatrix { .. }));
    }

    #[test]
    fn residual_is_small_on_random_system() {
        // Deterministic pseudo-random fill (no external RNG needed here).
        let n = 24;
        let mut t = Triplets::new(n);
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut dense_entries = Vec::new();
        for r in 0..n {
            for c in 0..n {
                let v = if r == c { 8.0 + next() } else { next() * 0.5 };
                t.add(r, c, v);
                dense_entries.push((r, c, v));
            }
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut x = b.clone();
        DenseSolver::default().solve_in_place(&t, &mut x).unwrap();
        let a = DenseMatrix::from_triplets(&t);
        let ax = a.mul_vec(&x);
        for (lhs, rhs) in ax.iter().zip(&b) {
            assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
        }
    }

    #[test]
    fn transposed_solve_matches_transposed_system() {
        // Pin the orientation of lu_solve_transposed: solve Aᵀ x = b and
        // check the residual against an explicit Aᵀ mat-vec.
        let n = 9;
        let mut m = DenseMatrix::zeros(n);
        let mut state = 0x9E37_79B9_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for r in 0..n {
            for c in 0..n {
                m.add(r, c, if r == c { 6.0 + next() } else { next() });
            }
        }
        let a = m.clone();
        let perm = m.lu_factor().unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).cos()).collect();
        let mut x = b.clone();
        m.lu_solve_transposed(&perm, &mut x);
        for r in 0..n {
            let atx: f64 = (0..n).map(|c| a.get(c, r) * x[c]).sum();
            assert!((atx - b[r]).abs() < 1e-10, "row {r}: {atx} vs {}", b[r]);
        }
    }

    #[test]
    fn norms_are_row_and_col_abs_sums() {
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 0, 1.0);
        m.add(0, 1, -2.0);
        m.add(1, 0, 3.0);
        m.add(1, 1, 4.0);
        let (inf, one) = m.norms();
        assert_eq!(inf, 7.0);
        assert_eq!(one, 6.0);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 0, 1.0);
        m.add(0, 1, 2.0);
        m.add(1, 0, 3.0);
        m.add(1, 1, 4.0);
        assert_eq!(m.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }
}
