//! Sparse LU factorization (left-looking Gilbert–Peierls with partial
//! pivoting) on compressed-sparse-column storage.
//!
//! The algorithm follows Davis' CSparse `cs_lu`: for each column, the
//! nonzero pattern of the triangular solve is discovered with a depth-first
//! reachability search over the partially built `L`, the numeric values are
//! computed in topological order, and the pivot row is the
//! largest-magnitude candidate among not-yet-pivotal rows.

// Index-based loops are kept in these numeric kernels: the indices are
// the mathematical objects (pivot rows, column positions).
#![allow(clippy::needless_range_loop)]

use super::bbd::{BbdSolver, BbdStats};
use super::order::min_degree_pinv;
use super::{verify, verify::SolveQuality, Solver};
use crate::error::Error;

/// Smallest pivot magnitude accepted before the matrix is declared singular.
const PIVOT_FLOOR: f64 = 1e-13;

/// Unknown count from which [`SparseSolver`] applies the fill-reducing
/// ordering (and, when enabled, attempts the BBD partition) automatically.
/// Below this the natural MNA order's fill is already near-optimal on
/// circuit sparsity and the permuted scatter would be pure overhead —
/// and, critically, every circuit in the frozen experiment baselines sits
/// far below it, so the new solve paths cannot perturb baseline bytes.
/// Override with `SPICIER_ORDERING=1`/`0` or the
/// [`force_ordering`](SparseSolver::force_ordering) /
/// [`force_bbd`](SparseSolver::force_bbd) setters.
pub const ORDERING_MIN_DIM: usize = 1024;

/// `SPICIER_ORDERING` knob: `"0"` forces the natural order, `"1"` forces
/// the minimum-degree ordering at every size, unset defers to the
/// [`ORDERING_MIN_DIM`] auto threshold. Read once per process.
fn ordering_env() -> Option<bool> {
    static KNOB: std::sync::OnceLock<Option<bool>> = std::sync::OnceLock::new();
    *KNOB.get_or_init(|| match std::env::var("SPICIER_ORDERING") {
        Ok(v) if v == "0" => Some(false),
        Ok(v) if v == "1" => Some(true),
        _ => None,
    })
}

/// `SPICIER_BBD` knob: any value other than `"0"` arms the
/// bordered-block-diagonal path for systems at or above
/// [`ORDERING_MIN_DIM`] unknowns. Off by default — the certified LU path
/// with ordering is the reference; BBD is the structure-exploiting
/// accelerator. Read once per process.
fn bbd_env() -> bool {
    static KNOB: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *KNOB.get_or_init(|| matches!(std::env::var("SPICIER_BBD"), Ok(v) if v != "0"))
}

/// Coordinate-format accumulator for assembling MNA matrices.
///
/// Duplicate `(row, col)` entries are summed when the matrix is compressed,
/// which is exactly the semantics device stamps need.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Triplets {
    dim: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl Triplets {
    /// Creates an accumulator for an `n × n` system.
    pub fn new(n: usize) -> Self {
        Self {
            dim: n,
            entries: Vec::new(),
        }
    }

    /// System dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Raw `(row, col, value)` entries, in insertion order.
    pub fn entries(&self) -> &[(usize, usize, f64)] {
        &self.entries
    }

    /// Number of raw entries (before duplicate merging).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds `value` at `(row, col)`; duplicates accumulate.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.dim && col < self.dim, "index out of bounds");
        self.entries.push((row, col, value));
    }

    /// Drops all entries but keeps the allocation, ready for re-assembly.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Resizes the system dimension (entries must already fit).
    ///
    /// # Panics
    ///
    /// Panics if an existing entry would fall out of bounds.
    pub fn reset(&mut self, n: usize) {
        self.entries.clear();
        self.dim = n;
    }
}

/// An immutable compressed-sparse-column matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    n: usize,
    col_ptr: Vec<usize>,
    rows: Vec<usize>,
    vals: Vec<f64>,
}

impl SparseMatrix {
    /// Compresses triplets into CSC form, summing duplicates.
    pub fn from_triplets(triplets: &Triplets) -> Self {
        let n = triplets.dim();
        let mut sorted: Vec<(usize, usize, f64)> = triplets.entries().to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (c, r));
        let mut col_ptr = vec![0usize; n + 1];
        let mut rows = Vec::with_capacity(sorted.len());
        let mut vals = Vec::with_capacity(sorted.len());
        let mut last: Option<(usize, usize)> = None;
        for &(r, c, v) in &sorted {
            if last == Some((r, c)) {
                *vals.last_mut().expect("entry exists when last is set") += v;
            } else {
                rows.push(r);
                vals.push(v);
                col_ptr[c + 1] += 1;
                last = Some((r, c));
            }
        }
        for c in 0..n {
            col_ptr[c + 1] += col_ptr[c];
        }
        Self {
            n,
            col_ptr,
            rows,
            vals,
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// Column-pointer array of the CSC pattern (`dim() + 1` entries).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row index of each stored nonzero, column-major.
    pub fn rows(&self) -> &[usize] {
        &self.rows
    }

    /// Value of each stored nonzero, parallel to [`rows`](Self::rows).
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable view of the stored values, for in-place numeric refresh on
    /// a fixed pattern (the BBD block pool reuses local matrices this way
    /// to keep [`SparseLu::refactor`]'s fast path).
    pub(crate) fn vals_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// Builds a matrix directly from CSC arrays. The caller must supply a
    /// valid pattern: `col_ptr` ascending with `n + 1` entries, row
    /// indices below `n`, at most one entry per `(row, column)`. Rows
    /// need not be sorted within a column — the LU kernel scatters.
    pub(crate) fn from_raw_csc(
        n: usize,
        col_ptr: Vec<usize>,
        rows: Vec<usize>,
        vals: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(col_ptr.len(), n + 1);
        debug_assert_eq!(*col_ptr.last().unwrap_or(&0), rows.len());
        debug_assert_eq!(rows.len(), vals.len());
        debug_assert!(rows.iter().all(|&r| r < n));
        Self {
            n,
            col_ptr,
            rows,
            vals,
        }
    }

    /// Computes `(‖A‖∞, ‖A‖₁)` — the max row and column absolute sums —
    /// in one pass over the stored nonzeros.
    pub fn norms(&self) -> (f64, f64) {
        let mut row_sums = vec![0.0f64; self.n];
        let mut one = 0.0f64;
        for c in 0..self.n {
            let mut col_sum = 0.0;
            for p in self.col_ptr[c]..self.col_ptr[c + 1] {
                let a = self.vals[p].abs();
                col_sum += a;
                row_sums[self.rows[p]] += a;
            }
            one = one.max(col_sum);
        }
        (row_sums.iter().fold(0.0f64, |m, &s| m.max(s)), one)
    }

    /// Computes `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "dimension mismatch");
        let mut y = vec![0.0; self.n];
        for c in 0..self.n {
            let xc = x[c];
            if xc == 0.0 {
                continue;
            }
            for p in self.col_ptr[c]..self.col_ptr[c + 1] {
                y[self.rows[p]] += self.vals[p] * xc;
            }
        }
        y
    }
}

/// A precomputed map from a fixed stamp sequence to CSC value slots.
///
/// MNA assembly emits the same `(row, col)` sequence every Newton iteration
/// once the circuit topology and evaluation mode are fixed; only the values
/// change. `StampMap::build` runs the triplet sort once and records, for
/// each sorted position, which raw entry it came from and which CSC slot it
/// lands in. [`StampMap::scatter`] then refreshes a cached
/// [`SparseMatrix`]'s values without sorting or reallocating.
///
/// The scatter replays the exact accumulation order of
/// [`SparseMatrix::from_triplets`] (the sort permutation depends only on the
/// `(row, col)` keys, never on the values), so the refreshed matrix is
/// bit-identical to one built from scratch.
#[derive(Debug, Clone)]
pub struct StampMap {
    dim: usize,
    /// `(row, col)` of each raw entry, in insertion order; used to detect
    /// a changed stamp sequence.
    keys: Vec<(u32, u32)>,
    /// Raw entry index for each program step, in `(col, row)` sorted order.
    order: Vec<u32>,
    /// CSC slot written by each program step (parallel to `order`);
    /// duplicate keys occupy consecutive steps with the same slot.
    slots: Vec<u32>,
}

impl StampMap {
    /// Builds the slot map for the stamp sequence in `triplets` and returns
    /// it together with the compressed matrix.
    ///
    /// # Panics
    ///
    /// Panics if the system has more than `u32::MAX` rows or raw entries.
    pub fn build(triplets: &Triplets) -> (Self, SparseMatrix) {
        let matrix = SparseMatrix::from_triplets(triplets);
        let entries = triplets.entries();
        assert!(triplets.dim() <= u32::MAX as usize, "dimension too large");
        assert!(entries.len() <= u32::MAX as usize, "too many stamp entries");
        let keys: Vec<(u32, u32)> = entries
            .iter()
            .map(|&(r, c, _)| (r as u32, c as u32))
            .collect();
        // Re-run the exact sort `from_triplets` uses, but carry the entry
        // index as the payload. `sort_unstable_by_key` is deterministic and
        // compares keys only, so the permutation matches the one applied to
        // the real values during compression.
        let mut sorted: Vec<(usize, usize, f64)> = entries
            .iter()
            .enumerate()
            .map(|(idx, &(r, c, _))| (r, c, idx as f64))
            .collect();
        sorted.sort_unstable_by_key(|&(r, c, _)| (c, r));
        let mut order = Vec::with_capacity(sorted.len());
        let mut slots = Vec::with_capacity(sorted.len());
        let mut slot = 0u32;
        let mut last: Option<(usize, usize)> = None;
        for &(r, c, idx) in &sorted {
            if let Some(prev) = last {
                if prev != (r, c) {
                    slot += 1;
                }
            }
            last = Some((r, c));
            order.push(idx as u32);
            slots.push(slot);
        }
        debug_assert_eq!(
            matrix.nnz(),
            if sorted.is_empty() {
                0
            } else {
                slot as usize + 1
            }
        );
        (
            Self {
                dim: triplets.dim(),
                keys,
                order,
                slots,
            },
            matrix,
        )
    }

    /// Builds a slot map for the stamp sequence in `triplets` whose
    /// compressed matrix is the **symmetrically permuted**
    /// `A'[pinv[r], pinv[c]] = A[r, c]`, for a fill-reducing ordering
    /// `pinv` (see [`order::min_degree_pinv`](super::order::min_degree_pinv)).
    ///
    /// The map's keys stay in *original* coordinates, so
    /// [`matches`](Self::matches) and [`scatter`](Self::scatter) work
    /// unchanged on the raw stamp sequence — every Newton iteration
    /// scatters straight into the permuted CSC matrix with zero extra
    /// per-iteration cost. Duplicate stamps accumulate in the permuted
    /// sort order, and the scatter replays exactly that order, so
    /// repeated assemblies of the same circuit stay bit-identical to each
    /// other (though not to the unpermuted compression, which sums
    /// duplicates in a different order).
    ///
    /// # Panics
    ///
    /// Panics if `pinv` is not a `dim()`-sized permutation, or if the
    /// system exceeds `u32::MAX` rows or raw entries.
    pub fn build_permuted(triplets: &Triplets, pinv: &[usize]) -> (Self, SparseMatrix) {
        let n = triplets.dim();
        assert_eq!(pinv.len(), n, "permutation length mismatch");
        let entries = triplets.entries();
        assert!(n <= u32::MAX as usize, "dimension too large");
        assert!(entries.len() <= u32::MAX as usize, "too many stamp entries");
        let keys: Vec<(u32, u32)> = entries
            .iter()
            .map(|&(r, c, _)| (r as u32, c as u32))
            .collect();
        let mut sorted: Vec<(usize, usize, u32)> = entries
            .iter()
            .enumerate()
            .map(|(idx, &(r, c, _))| (pinv[r], pinv[c], idx as u32))
            .collect();
        sorted.sort_unstable_by_key(|&(r, c, _)| (c, r));
        let mut col_ptr = vec![0usize; n + 1];
        let mut rows = Vec::with_capacity(sorted.len());
        let mut vals: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut order = Vec::with_capacity(sorted.len());
        let mut slots = Vec::with_capacity(sorted.len());
        let mut last: Option<(usize, usize)> = None;
        for &(r, c, idx) in &sorted {
            let v = entries[idx as usize].2;
            if last == Some((r, c)) {
                *vals.last_mut().expect("entry exists when last is set") += v;
            } else {
                rows.push(r);
                vals.push(v);
                col_ptr[c + 1] += 1;
                last = Some((r, c));
            }
            order.push(idx);
            slots.push(vals.len() as u32 - 1);
        }
        for c in 0..n {
            col_ptr[c + 1] += col_ptr[c];
        }
        (
            Self {
                dim: n,
                keys,
                order,
                slots,
            },
            SparseMatrix {
                n,
                col_ptr,
                rows,
                vals,
            },
        )
    }

    /// Whether `triplets` still carries the stamp sequence this map was
    /// built for (same dimension, same `(row, col)` keys in the same order).
    pub fn matches(&self, triplets: &Triplets) -> bool {
        if triplets.dim() != self.dim || triplets.len() != self.keys.len() {
            return false;
        }
        triplets
            .entries()
            .iter()
            .zip(&self.keys)
            .all(|(&(r, c, _), &(kr, kc))| r as u32 == kr && c as u32 == kc)
    }

    /// Rewrites `matrix`'s values from `triplets`, reproducing
    /// [`SparseMatrix::from_triplets`] bit-for-bit. Returns `false` (and
    /// leaves `matrix` untouched) when the stamp sequence no longer matches
    /// this map and the caller must rebuild.
    pub fn scatter(&self, triplets: &Triplets, matrix: &mut SparseMatrix) -> bool {
        if !self.matches(triplets) || matrix.nnz() != self.slot_count() {
            return false;
        }
        let entries = triplets.entries();
        let vals = &mut matrix.vals;
        let mut prev_slot = u32::MAX;
        for (&idx, &slot) in self.order.iter().zip(&self.slots) {
            let v = entries[idx as usize].2;
            if slot == prev_slot {
                vals[slot as usize] += v;
            } else {
                // First entry of a slot run: assign, matching the
                // `rows.push / vals.push` of a fresh compression exactly
                // (including signed zeros).
                vals[slot as usize] = v;
                prev_slot = slot;
            }
        }
        true
    }

    /// Number of CSC slots (merged nonzeros) this map addresses.
    fn slot_count(&self) -> usize {
        self.slots.last().map_or(0, |&s| s as usize + 1)
    }
}

/// Growable CSC used for the `L` and `U` factors during factorization.
#[derive(Debug, Clone, Default)]
struct FactorCsc {
    col_ptr: Vec<usize>,
    rows: Vec<usize>,
    vals: Vec<f64>,
}

impl FactorCsc {
    fn with_dim(n: usize) -> Self {
        Self {
            col_ptr: Vec::with_capacity(n + 1),
            rows: Vec::new(),
            vals: Vec::new(),
        }
    }

    fn begin(&mut self) {
        self.col_ptr.clear();
        self.col_ptr.push(0);
        self.rows.clear();
        self.vals.clear();
    }

    fn push(&mut self, row: usize, val: f64) {
        self.rows.push(row);
        self.vals.push(val);
    }

    fn end_column(&mut self) {
        self.col_ptr.push(self.rows.len());
    }
}

/// Running counters for the factorization fast path.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LuStats {
    /// Full symbolic + numeric factorizations (first use, pattern change,
    /// or pivot-degradation fallback).
    pub full_factors: usize,
    /// Numeric-only refactorizations that reused the cached pattern.
    pub refactors: usize,
    /// Refactorizations abandoned mid-replay because partial pivoting
    /// would now choose a different pivot (see
    /// [`SparseLu::last_pivot_fallback`] for the triggering ratio).
    pub pivot_fallbacks: usize,
    /// Triangular solves applied against the factors (Newton steps,
    /// refinement re-solves, and condition-estimator probes alike).
    pub solves: usize,
}

impl LuStats {
    /// Adds `other`'s counters into `self` (used by the telemetry
    /// rollup and by [`AutoSolver::stats`](crate::linalg::AutoSolver::stats)
    /// to merge the dense and sparse kernels).
    pub fn absorb(&mut self, other: &LuStats) {
        self.full_factors += other.full_factors;
        self.refactors += other.refactors;
        self.pivot_fallbacks += other.pivot_fallbacks;
        self.solves += other.solves;
    }

    /// Counters accumulated since `earlier` was snapshotted from the
    /// same solver.
    ///
    /// Counters are strictly monotone over a solver's lifetime, so each
    /// component of the delta must be non-negative; a snapshot taken from
    /// a *different* solver (or after a counter reset) would silently
    /// clamp to zero under saturating arithmetic and mask regressions in
    /// telemetry rollups. Debug and checked builds therefore assert
    /// monotonicity; release builds still saturate rather than wrap so a
    /// violated precondition degrades to an undercount, never a garbage
    /// near-`usize::MAX` rollup.
    #[must_use]
    pub fn delta_since(&self, earlier: &LuStats) -> LuStats {
        debug_assert!(
            self.full_factors >= earlier.full_factors
                && self.refactors >= earlier.refactors
                && self.pivot_fallbacks >= earlier.pivot_fallbacks
                && self.solves >= earlier.solves,
            "non-monotone LuStats snapshot: now {self:?}, earlier {earlier:?} \
             (snapshots must come from the same live solver)"
        );
        LuStats {
            full_factors: self.full_factors.saturating_sub(earlier.full_factors),
            refactors: self.refactors.saturating_sub(earlier.refactors),
            pivot_fallbacks: self.pivot_fallbacks.saturating_sub(earlier.pivot_fallbacks),
            solves: self.solves.saturating_sub(earlier.solves),
        }
    }
}

impl std::fmt::Display for LuStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} full factors, {} refactors, {} pivot fallbacks, {} solves",
            self.full_factors, self.refactors, self.pivot_fallbacks, self.solves
        )
    }
}

/// Account of the most recent pivot-degradation fallback inside
/// [`SparseLu::refactor`]: which column abandoned the cached replay, and
/// by how much the stored pivot had degraded relative to the row partial
/// pivoting now prefers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PivotFallback {
    /// Column at which the replay was abandoned.
    pub column: usize,
    /// Row the cached symbolic analysis pivoted on.
    pub stored_row: usize,
    /// Row the fresh pivot search preferred (`usize::MAX` when the whole
    /// column collapsed below the pivot floor).
    pub winning_row: usize,
    /// `|winning pivot| / |stored pivot|` at the fallback point — how many
    /// times larger the fresh winner was than the stored choice
    /// (`∞` when the stored pivot's value had collapsed to zero).
    pub ratio: f64,
}

impl std::fmt::Display for PivotFallback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pivot fallback at column {}: stored row {} degraded {:.3e}x vs row {}",
            self.column,
            self.stored_row,
            self.ratio,
            if self.winning_row == usize::MAX {
                "(none)".to_string()
            } else {
                self.winning_row.to_string()
            }
        )
    }
}

/// LU factors `P A = L U` with the row permutation stored as `pinv`
/// (`pinv[original_row] = pivoted_row`).
#[derive(Debug, Default)]
pub struct SparseLu {
    n: usize,
    lower: FactorCsc,
    upper: FactorCsc,
    pinv: Vec<isize>,
    // Workspaces reused across factorizations.
    work_x: Vec<f64>,
    work_xi: Vec<usize>,
    work_stack: Vec<usize>,
    work_pstack: Vec<usize>,
    work_marked: Vec<bool>,
    // Symbolic state captured by `factor` and replayed by `refactor`:
    // the A pattern it was computed for, the per-column elimination
    // sequences (reverse-topological reach), the pivot row of each column,
    // and L's row indices in original (unpivoted) coordinates.
    sym_valid: bool,
    sym_a_col_ptr: Vec<usize>,
    sym_a_rows: Vec<usize>,
    sym_xi: Vec<usize>,
    sym_xi_ptr: Vec<usize>,
    sym_pivot: Vec<usize>,
    sym_lower_rows: Vec<usize>,
    stats: LuStats,
    /// Triangular-solve count, atomic because [`SparseLu::solve`] and
    /// [`SparseLu::solve_transposed`] take `&self` (they are called
    /// through shared borrows inside the residual certifier).
    solves: std::sync::atomic::AtomicUsize,
    last_pivot_fallback: Option<PivotFallback>,
}

impl SparseLu {
    /// Creates an empty factorization workspace.
    pub fn new() -> Self {
        Self::default()
    }

    fn resize(&mut self, n: usize) {
        self.n = n;
        self.work_x.clear();
        self.work_x.resize(n, 0.0);
        self.work_marked.clear();
        self.work_marked.resize(n, false);
        self.pinv.clear();
        self.pinv.resize(n, -1);
        self.lower = FactorCsc::with_dim(n);
        self.upper = FactorCsc::with_dim(n);
    }

    /// Factors `a`, overwriting any previous factorization.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SingularMatrix`] when no acceptable pivot exists in
    /// some column.
    pub fn factor(&mut self, a: &SparseMatrix) -> Result<(), Error> {
        let n = a.dim();
        self.resize(n);
        self.lower.begin();
        self.upper.begin();
        self.sym_valid = false;
        self.sym_xi.clear();
        self.sym_xi_ptr.clear();
        self.sym_xi_ptr.push(0);
        self.sym_pivot.clear();
        for k in 0..n {
            // ----- symbolic: pattern of x = L \ A[:, k] via DFS reach -----
            self.work_xi.clear();
            for p in a.col_ptr[k]..a.col_ptr[k + 1] {
                let i = a.rows[p];
                if !self.work_marked[i] {
                    self.dfs_reach(i);
                }
            }
            // `work_xi` now holds the reach in reverse-topological order;
            // process it back-to-front for a topological sweep.

            // ----- numeric: scatter A[:, k] then eliminate -----
            for p in a.col_ptr[k]..a.col_ptr[k + 1] {
                self.work_x[a.rows[p]] += a.vals[p];
            }
            for idx in (0..self.work_xi.len()).rev() {
                let i = self.work_xi[idx];
                let piv = self.pinv[i];
                if piv < 0 {
                    continue;
                }
                let xi_val = self.work_x[i];
                if xi_val == 0.0 {
                    continue;
                }
                let col = piv as usize;
                // Skip the unit diagonal stored first in each L column.
                for p in (self.lower.col_ptr[col] + 1)..self.lower.col_ptr[col + 1] {
                    self.work_x[self.lower.rows[p]] -= self.lower.vals[p] * xi_val;
                }
            }

            // ----- pivot: largest magnitude among non-pivotal rows -----
            let mut pivot_row = usize::MAX;
            let mut pivot_mag = 0.0f64;
            for &i in &self.work_xi {
                if self.pinv[i] < 0 {
                    let mag = self.work_x[i].abs();
                    if mag > pivot_mag {
                        pivot_mag = mag;
                        pivot_row = i;
                    }
                }
            }
            if pivot_row == usize::MAX || pivot_mag < PIVOT_FLOOR {
                // Clean the workspace before reporting failure.
                for &i in &self.work_xi {
                    self.work_x[i] = 0.0;
                    self.work_marked[i] = false;
                }
                return Err(Error::SingularMatrix { column: k });
            }
            let pivot = self.work_x[pivot_row];
            self.pinv[pivot_row] = k as isize;
            self.sym_xi.extend_from_slice(&self.work_xi);
            self.sym_xi_ptr.push(self.sym_xi.len());
            self.sym_pivot.push(pivot_row);

            // ----- emit U column k then L column k -----
            for &i in &self.work_xi {
                let piv = self.pinv[i];
                if piv >= 0 && (piv as usize) < k {
                    self.upper.push(piv as usize, self.work_x[i]);
                }
            }
            self.upper.push(k, pivot);
            self.upper.end_column();

            self.lower.push(pivot_row, 1.0);
            for &i in &self.work_xi {
                if self.pinv[i] < 0 {
                    self.lower.push(i, self.work_x[i] / pivot);
                }
            }
            self.lower.end_column();

            // ----- reset workspace -----
            for &i in &self.work_xi {
                self.work_x[i] = 0.0;
                self.work_marked[i] = false;
            }
        }
        // Keep L's original-coordinate rows and A's pattern: `refactor`
        // replays the elimination in these coordinates.
        self.sym_lower_rows.clear();
        self.sym_lower_rows.extend_from_slice(&self.lower.rows);
        self.sym_a_col_ptr.clear();
        self.sym_a_col_ptr.extend_from_slice(&a.col_ptr);
        self.sym_a_rows.clear();
        self.sym_a_rows.extend_from_slice(&a.rows);
        // Remap L's row indices into pivoted coordinates so that L is
        // genuinely lower triangular for the solve phase.
        for r in &mut self.lower.rows {
            debug_assert!(self.pinv[*r] >= 0);
            *r = self.pinv[*r] as usize;
        }
        self.sym_valid = true;
        self.stats.full_factors += 1;
        Ok(())
    }

    /// Refactors a matrix with the same sparsity pattern as the last
    /// successful [`factor`](Self::factor), reusing the discovered column
    /// patterns, pivot order, and `L`/`U` allocations.
    ///
    /// The numeric replay is bit-identical to a from-scratch factorization
    /// as long as the stored pivot order is still what partial pivoting
    /// would choose. Each column's pivot search is re-run over the new
    /// values; when the winner differs from the stored pivot (degradation),
    /// or when there is no prior factorization or the pattern changed, the
    /// call transparently falls back to a full [`factor`](Self::factor).
    ///
    /// # Errors
    ///
    /// Returns [`Error::SingularMatrix`] when no acceptable pivot exists in
    /// some column.
    pub fn refactor(&mut self, a: &SparseMatrix) -> Result<(), Error> {
        if !self.sym_valid
            || a.dim() != self.n
            || a.col_ptr != self.sym_a_col_ptr
            || a.rows != self.sym_a_rows
        {
            return self.factor(a);
        }
        let n = self.n;
        for k in 0..n {
            let xi = &self.sym_xi[self.sym_xi_ptr[k]..self.sym_xi_ptr[k + 1]];
            // ----- numeric: scatter A[:, k] then eliminate in replay order -----
            for p in a.col_ptr[k]..a.col_ptr[k + 1] {
                self.work_x[a.rows[p]] += a.vals[p];
            }
            for idx in (0..xi.len()).rev() {
                let i = xi[idx];
                // `pinv` is fully populated here; "already pivotal at step
                // k" translates to a final pivot column below `k`.
                let piv = self.pinv[i];
                if piv as usize >= k {
                    continue;
                }
                let xi_val = self.work_x[i];
                if xi_val == 0.0 {
                    continue;
                }
                let col = piv as usize;
                for p in (self.lower.col_ptr[col] + 1)..self.lower.col_ptr[col + 1] {
                    self.work_x[self.sym_lower_rows[p]] -= self.lower.vals[p] * xi_val;
                }
            }

            // ----- pivot recheck: rerun the argmax over the new values -----
            let mut pivot_row = usize::MAX;
            let mut pivot_mag = 0.0f64;
            for &i in xi {
                if self.pinv[i] as usize >= k {
                    let mag = self.work_x[i].abs();
                    if mag > pivot_mag {
                        pivot_mag = mag;
                        pivot_row = i;
                    }
                }
            }
            if pivot_row != self.sym_pivot[k] || pivot_mag < PIVOT_FLOOR {
                // Partial pivoting would choose differently now (or the
                // column collapsed): the replay is no longer exact.
                // Record how far the stored pivot degraded — previously
                // this fallback was silent, which hid exactly the numeric
                // drift the condition estimator now cares about — then
                // clean the workspace and redo the symbolic work.
                let stored_row = self.sym_pivot[k];
                let stored_mag = self.work_x[stored_row].abs();
                self.last_pivot_fallback = Some(PivotFallback {
                    column: k,
                    stored_row,
                    winning_row: pivot_row,
                    ratio: if stored_mag > 0.0 {
                        pivot_mag / stored_mag
                    } else {
                        f64::INFINITY
                    },
                });
                self.stats.pivot_fallbacks += 1;
                if crate::telemetry::enabled() {
                    crate::telemetry::event(
                        "pivot_fallback",
                        &[
                            ("column", k.into()),
                            ("stored_row", stored_row.into()),
                            (
                                "ratio",
                                self.last_pivot_fallback
                                    .map_or(f64::NAN, |f| f.ratio)
                                    .into(),
                            ),
                        ],
                    );
                }
                for &i in xi {
                    self.work_x[i] = 0.0;
                }
                return self.factor(a);
            }
            let pivot = self.work_x[pivot_row];

            // ----- overwrite U column k then L column k in place -----
            let mut cursor = self.upper.col_ptr[k];
            for &i in xi {
                let piv = self.pinv[i];
                if (piv as usize) < k {
                    debug_assert_eq!(self.upper.rows[cursor], piv as usize);
                    self.upper.vals[cursor] = self.work_x[i];
                    cursor += 1;
                }
            }
            debug_assert_eq!(cursor + 1, self.upper.col_ptr[k + 1]);
            debug_assert_eq!(self.upper.rows[cursor], k);
            self.upper.vals[cursor] = pivot;

            let mut cursor = self.lower.col_ptr[k];
            debug_assert_eq!(self.sym_lower_rows[cursor], pivot_row);
            self.lower.vals[cursor] = 1.0;
            cursor += 1;
            for &i in xi {
                if self.pinv[i] as usize > k {
                    debug_assert_eq!(self.sym_lower_rows[cursor], i);
                    self.lower.vals[cursor] = self.work_x[i] / pivot;
                    cursor += 1;
                }
            }
            debug_assert_eq!(cursor, self.lower.col_ptr[k + 1]);

            // ----- reset workspace -----
            for &i in xi {
                self.work_x[i] = 0.0;
            }
        }
        self.stats.refactors += 1;
        Ok(())
    }

    /// Counters for full factorizations vs. numeric-only
    /// refactorizations, with the triangular-solve count folded in.
    pub fn stats(&self) -> LuStats {
        let mut stats = self.stats;
        stats.solves = self.solves.load(std::sync::atomic::Ordering::Relaxed);
        stats
    }

    /// Account of the most recent pivot-degradation fallback taken by
    /// [`refactor`](Self::refactor), with the triggering pivot ratio.
    /// `None` until a fallback has occurred.
    pub fn last_pivot_fallback(&self) -> Option<PivotFallback> {
        self.last_pivot_fallback
    }

    /// Iterative depth-first search over the partially built `L` starting
    /// from original row `start`; appends the reach to `work_xi` in
    /// reverse-topological order and marks visited rows.
    fn dfs_reach(&mut self, start: usize) {
        self.work_stack.clear();
        self.work_pstack.clear();
        self.work_stack.push(start);
        self.work_marked[start] = true;
        self.work_pstack.push(self.column_start(start));
        while let Some(&node) = self.work_stack.last() {
            let depth = self.work_stack.len() - 1;
            let col_end = self.column_end(node);
            let mut cursor = self.work_pstack[depth];
            let mut descended = false;
            while cursor < col_end {
                let child = self.lower.rows[cursor];
                cursor += 1;
                if !self.work_marked[child] {
                    self.work_marked[child] = true;
                    self.work_pstack[depth] = cursor;
                    self.work_stack.push(child);
                    self.work_pstack.push(self.column_start(child));
                    descended = true;
                    break;
                }
            }
            if !descended {
                self.work_stack.pop();
                self.work_pstack.pop();
                self.work_xi.push(node);
            }
        }
    }

    /// First off-diagonal entry of the L column that row `node` maps to, or
    /// an empty range when `node` is not yet pivotal.
    fn column_start(&self, node: usize) -> usize {
        match self.pinv[node] {
            piv if piv >= 0 => self.lower.col_ptr[piv as usize] + 1,
            _ => 0,
        }
    }

    fn column_end(&self, node: usize) -> usize {
        match self.pinv[node] {
            piv if piv >= 0 => self.lower.col_ptr[piv as usize + 1],
            _ => 0,
        }
    }

    /// Solves `A x = b` using the current factors; `rhs` holds `b` on entry
    /// and `x` on exit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SolverContract`] when no factorization has been
    /// computed or the dimension does not match, so callers in sweep
    /// workers and the recovery ladder can treat it as a convergence
    /// failure instead of aborting.
    pub fn solve(&self, rhs: &mut [f64]) -> Result<(), Error> {
        let n = self.n;
        if self.lower.col_ptr.len() != n + 1 {
            return Err(Error::SolverContract {
                reason: "solve called without a complete factorization".to_string(),
            });
        }
        if rhs.len() != n {
            return Err(Error::SolverContract {
                reason: format!("rhs has {} entries for a {n}-unknown system", rhs.len()),
            });
        }
        // x = P b
        let mut x = vec![0.0; n];
        for (i, &v) in rhs.iter().enumerate() {
            x[self.pinv[i] as usize] = v;
        }
        // L y = x (unit diagonal first in each column)
        for c in 0..n {
            let xc = x[c];
            if xc != 0.0 {
                for p in (self.lower.col_ptr[c] + 1)..self.lower.col_ptr[c + 1] {
                    x[self.lower.rows[p]] -= self.lower.vals[p] * xc;
                }
            }
        }
        // U z = y (diagonal stored last in each column)
        for c in (0..n).rev() {
            let last = self.upper.col_ptr[c + 1] - 1;
            debug_assert_eq!(self.upper.rows[last], c);
            let xc = x[c] / self.upper.vals[last];
            x[c] = xc;
            if xc != 0.0 {
                for p in self.upper.col_ptr[c]..last {
                    x[self.upper.rows[p]] -= self.upper.vals[p] * xc;
                }
            }
        }
        rhs.copy_from_slice(&x);
        self.solves
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    /// Solves `Aᵀ x = b` using the current factors; `rhs` holds `b` on
    /// entry and `x` on exit. With `P A = L U` this is `Uᵀ z = b`,
    /// `Lᵀ w = z`, `x = Pᵀ w`; rows of each transposed factor are the CSC
    /// columns already stored, so no transposition is materialized. Used
    /// by the Hager condition estimator.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SolverContract`] when no factorization has been
    /// computed or the dimension does not match.
    pub fn solve_transposed(&self, rhs: &mut [f64]) -> Result<(), Error> {
        let n = self.n;
        if self.lower.col_ptr.len() != n + 1 {
            return Err(Error::SolverContract {
                reason: "solve_transposed called without a complete factorization".to_string(),
            });
        }
        if rhs.len() != n {
            return Err(Error::SolverContract {
                reason: format!("rhs has {} entries for a {n}-unknown system", rhs.len()),
            });
        }
        let mut x = rhs.to_vec();
        // Uᵀ z = b: forward substitution; row c of Uᵀ is U's column c,
        // diagonal stored last.
        for c in 0..n {
            let last = self.upper.col_ptr[c + 1] - 1;
            debug_assert_eq!(self.upper.rows[last], c);
            let mut sum = x[c];
            for p in self.upper.col_ptr[c]..last {
                sum -= self.upper.vals[p] * x[self.upper.rows[p]];
            }
            x[c] = sum / self.upper.vals[last];
        }
        // Lᵀ w = z: backward substitution with unit diagonal (stored
        // first in each L column).
        for c in (0..n).rev() {
            let mut sum = x[c];
            for p in (self.lower.col_ptr[c] + 1)..self.lower.col_ptr[c + 1] {
                sum -= self.lower.vals[p] * x[self.lower.rows[p]];
            }
            x[c] = sum;
        }
        // x = Pᵀ w: original row i was pivoted to row pinv[i].
        for (i, out) in rhs.iter_mut().enumerate() {
            *out = x[self.pinv[i] as usize];
        }
        self.solves
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    /// Chaos hook: corrupts one stored `U` pivot so subsequent solves
    /// complete cleanly but produce wrong answers only the residual
    /// certifier can detect. The corruption lives in the factor values,
    /// which every `factor`/`refactor` call fully overwrites.
    pub(crate) fn perturb_pivot(&mut self) {
        if self.n == 0 {
            return;
        }
        let k = self.n / 2;
        let last = self.upper.col_ptr[k + 1] - 1;
        self.upper.vals[last] *= 1.0e3;
    }

    /// Total nonzeros in both factors (fill-in diagnostic).
    pub fn factor_nnz(&self) -> usize {
        self.lower.rows.len() + self.upper.rows.len()
    }
}

/// Running counters for a caching solver's assembly and factorization paths.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SolverStats {
    /// Times the stamp-slot map was (re)built because the stamp sequence
    /// changed (includes the first call).
    pub pattern_rebuilds: usize,
    /// Full symbolic + numeric factorizations.
    pub full_factors: usize,
    /// Numeric-only refactorizations on the cached pattern.
    pub refactors: usize,
    /// Refactorizations abandoned because the stored pivot order degraded
    /// (each one also counts as a full factorization).
    pub pivot_fallbacks: usize,
}

/// Reusable sparse solver workspace with a cached stamp-slot map.
///
/// The first call (and any call whose stamp sequence differs from the
/// cached one) compresses the triplets, builds a [`StampMap`], and runs a
/// full factorization. Subsequent calls with the same stamp sequence —
/// every Newton iteration of a fixed circuit — scatter values straight
/// into the cached CSC matrix and run [`SparseLu::refactor`].
///
/// Above [`ORDERING_MIN_DIM`] unknowns the pattern rebuild additionally
/// computes a minimum-degree fill-reducing ordering
/// ([`order`](super::order)) and caches the *permuted* matrix, so every
/// refactor and solve runs on the low-fill pattern at zero per-iteration
/// cost; when armed (`SPICIER_BBD` or [`force_bbd`](Self::force_bbd)) a
/// bordered-block-diagonal partition ([`bbd`](super::bbd)) is tried
/// first, with any BBD failure falling back transparently to the
/// certified LU path.
#[derive(Debug, Default)]
pub struct SparseSolver {
    lu: SparseLu,
    map: Option<StampMap>,
    matrix: Option<SparseMatrix>,
    pattern_rebuilds: usize,
    last_quality: SolveQuality,
    /// Active fill-reducing permutation (`perm[original] = permuted`);
    /// `None` when factoring in natural order (including whenever the
    /// BBD path owns the cached matrix, which is stored unpermuted).
    perm: Option<Vec<usize>>,
    perm_scratch: Vec<f64>,
    force_ordering: Option<bool>,
    force_bbd: Option<bool>,
    bbd: Option<BbdSolver>,
    /// Set when the BBD path errored for the current pattern; cleared on
    /// the next pattern rebuild.
    bbd_disabled: bool,
    bbd_fallbacks: usize,
}

impl SparseSolver {
    /// Forces the fill-reducing ordering on (`true`) or off (`false`)
    /// regardless of size and environment; invalidates the cached
    /// pattern so the next solve rebuilds.
    pub fn force_ordering(&mut self, on: bool) {
        self.force_ordering = Some(on);
        self.invalidate();
    }

    /// Forces the BBD partition attempt on (`true`) or off (`false`)
    /// regardless of size and environment; invalidates the cached
    /// pattern so the next solve rebuilds.
    pub fn force_bbd(&mut self, on: bool) {
        self.force_bbd = Some(on);
        self.invalidate();
    }

    fn invalidate(&mut self) {
        self.map = None;
        self.matrix = None;
        self.perm = None;
        self.bbd = None;
        self.bbd_disabled = false;
    }

    /// Whether solves currently run on a fill-reduced permuted pattern.
    pub fn ordering_active(&self) -> bool {
        self.perm.is_some()
    }

    /// Whether the BBD partitioned path is current (detected on this
    /// pattern and not disabled by a runtime fallback).
    pub fn bbd_active(&self) -> bool {
        self.bbd.is_some() && !self.bbd_disabled
    }

    /// Partition shape of the active BBD path, if any.
    pub fn bbd_stats(&self) -> Option<BbdStats> {
        self.bbd.as_ref().map(BbdSolver::stats)
    }

    /// Times a BBD solve failed and the certified LU path took over.
    pub fn bbd_fallbacks(&self) -> usize {
        self.bbd_fallbacks
    }

    /// Rebuilds the cached stamp map/matrix for a new stamp sequence,
    /// deciding the solve strategy for this pattern: BBD when armed and
    /// a profitable partition exists (matrix cached unpermuted so the
    /// LU fallback stays valid), else minimum-degree ordering when on
    /// for this size, else the natural order.
    fn rebuild(&mut self, triplets: &Triplets) {
        let dim = triplets.dim();
        self.invalidate_pattern_state();
        let want_bbd = self
            .force_bbd
            .unwrap_or_else(|| bbd_env() && dim >= ORDERING_MIN_DIM);
        let want_ordering = self
            .force_ordering
            .or_else(ordering_env)
            .unwrap_or(dim >= ORDERING_MIN_DIM);
        if want_bbd {
            let (map, matrix) = StampMap::build(triplets);
            self.bbd = BbdSolver::detect(&matrix);
            if self.bbd.is_some() || !want_ordering {
                self.map = Some(map);
                self.matrix = Some(matrix);
                self.pattern_rebuilds += 1;
                return;
            }
            // No profitable partition: fall through to the ordered build.
        }
        if want_ordering {
            let a = SparseMatrix::from_triplets(triplets);
            let pinv = min_degree_pinv(dim, a.col_ptr(), a.rows());
            let (map, matrix) = StampMap::build_permuted(triplets, &pinv);
            self.perm = Some(pinv);
            self.map = Some(map);
            self.matrix = Some(matrix);
        } else {
            let (map, matrix) = StampMap::build(triplets);
            self.map = Some(map);
            self.matrix = Some(matrix);
        }
        self.pattern_rebuilds += 1;
    }

    fn invalidate_pattern_state(&mut self) {
        self.perm = None;
        self.bbd = None;
        self.bbd_disabled = false;
    }
    /// Counters for the assembly and factorization fast paths.
    pub fn stats(&self) -> SolverStats {
        let lu = self.lu.stats();
        SolverStats {
            pattern_rebuilds: self.pattern_rebuilds,
            full_factors: lu.full_factors,
            refactors: lu.refactors,
            pivot_fallbacks: lu.pivot_fallbacks,
        }
    }

    /// Account of the most recent refactorization pivot fallback, if any.
    pub fn last_pivot_fallback(&self) -> Option<PivotFallback> {
        self.lu.last_pivot_fallback()
    }

    /// Raw kernel counters (the [`LuStats`] view of
    /// [`stats`](Self::stats), including the triangular-solve count).
    pub fn lu_stats(&self) -> LuStats {
        self.lu.stats()
    }

    /// Certification record of the most recent successful solve.
    pub fn last_quality(&self) -> SolveQuality {
        self.last_quality
    }
}

/// Runs one fully certified BBD solve: numeric factor, chaos hook,
/// solve into a scratch copy, residual certification against the
/// unpermuted matrix. `rhs` is written only on success, so a failure
/// leaves the caller's `b` intact for the LU fallback.
fn bbd_solve_certified(
    bbd: &mut BbdSolver,
    a: &SparseMatrix,
    rhs: &mut [f64],
) -> Result<SolveQuality, Error> {
    bbd.factor(a)?;
    if crate::chaos::perturb_lu_active() {
        bbd.perturb_pivot();
    }
    let b = rhs.to_vec();
    let mut x = b.clone();
    bbd.solve(&mut x)?;
    let (norm_a_inf, norm_a_1) = a.norms();
    let bbd_ref: &BbdSolver = bbd;
    let quality = verify::certify_in_place(
        &mut x,
        &b,
        norm_a_inf,
        norm_a_1,
        |xv, out| {
            out.copy_from_slice(&b);
            for c in 0..a.n {
                let xc = xv[c];
                if xc == 0.0 {
                    continue;
                }
                for p in a.col_ptr[c]..a.col_ptr[c + 1] {
                    out[a.rows[p]] -= a.vals[p] * xc;
                }
            }
        },
        |v| bbd_ref.solve(v),
        // No transposed BBD solve: the condition estimator (failure
        // path only) sees a solve error and reports an infinite
        // estimate, which is the honest answer for a path about to
        // fall back anyway.
        |_v| {
            Err(Error::SolverContract {
                reason: "BBD transposed solve unavailable".to_string(),
            })
        },
    )?;
    rhs.copy_from_slice(&x);
    Ok(quality)
}

impl Solver for SparseSolver {
    fn solve_in_place(&mut self, triplets: &Triplets, rhs: &mut [f64]) -> Result<(), Error> {
        let cached = match (&self.map, &mut self.matrix) {
            (Some(map), Some(matrix)) => map.scatter(triplets, matrix),
            _ => false,
        };
        if !cached {
            self.rebuild(triplets);
        }
        // ----- BBD partitioned path (matrix cached unpermuted) -----
        if !self.bbd_disabled {
            if let Some(mut bbd) = self.bbd.take() {
                let a = self.matrix.as_ref().expect("matrix cached above");
                let result = bbd_solve_certified(&mut bbd, a, rhs);
                self.bbd = Some(bbd);
                match result {
                    Ok(quality) => {
                        self.last_quality = quality;
                        if crate::telemetry::enabled() {
                            crate::telemetry::event(
                                "sparse_solve",
                                &[
                                    ("dim", a.n.into()),
                                    ("bwerr", quality.backward_error.into()),
                                    ("refinement_steps", quality.refinement_steps.into()),
                                    ("ordered", 0usize.into()),
                                    ("bbd", 1usize.into()),
                                ],
                            );
                        }
                        return Ok(());
                    }
                    Err(err) => {
                        // Singular block, partition/value mismatch, or a
                        // certification miss: disable BBD for this
                        // pattern and fall through to certified LU.
                        self.bbd_disabled = true;
                        self.bbd_fallbacks += 1;
                        if crate::telemetry::enabled() {
                            crate::telemetry::event(
                                "bbd_fallback",
                                &[("dim", a.n.into()), ("error", format!("{err}").into())],
                            );
                        }
                    }
                }
            }
        }
        let a = self.matrix.as_ref().expect("matrix cached above");
        // ----- permute b into elimination order when ordering is active -----
        if let Some(perm) = &self.perm {
            self.perm_scratch.clear();
            self.perm_scratch.resize(rhs.len(), 0.0);
            for (i, &v) in rhs.iter().enumerate() {
                self.perm_scratch[perm[i]] = v;
            }
            rhs.copy_from_slice(&self.perm_scratch);
        }
        self.lu.refactor(a)?;
        if crate::chaos::perturb_lu_active() {
            self.lu.perturb_pivot();
        }
        let b = rhs.to_vec();
        self.lu.solve(rhs)?;
        // Norms are permutation-invariant and `a` IS the permuted matrix,
        // so the certification below is exact for the permuted system —
        // and backward error is identical in original coordinates.
        let (norm_a_inf, norm_a_1) = a.norms();
        let lu = &self.lu;
        self.last_quality = verify::certify_in_place(
            rhs,
            &b,
            norm_a_inf,
            norm_a_1,
            |x, out| {
                // r = b − A x over the cached CSC matrix.
                out.copy_from_slice(&b);
                for c in 0..a.n {
                    let xc = x[c];
                    if xc == 0.0 {
                        continue;
                    }
                    for p in a.col_ptr[c]..a.col_ptr[c + 1] {
                        out[a.rows[p]] -= a.vals[p] * xc;
                    }
                }
            },
            |v| lu.solve(v),
            |v| lu.solve_transposed(v),
        )?;
        // ----- back to original coordinates -----
        if let Some(perm) = &self.perm {
            for (i, slot) in self.perm_scratch.iter_mut().enumerate() {
                *slot = rhs[perm[i]];
            }
            rhs.copy_from_slice(&self.perm_scratch);
        }
        if crate::telemetry::enabled() {
            crate::telemetry::event(
                "sparse_solve",
                &[
                    ("dim", a.n.into()),
                    ("bwerr", self.last_quality.backward_error.into()),
                    (
                        "refinement_steps",
                        self.last_quality.refinement_steps.into(),
                    ),
                    ("ordered", usize::from(self.perm.is_some()).into()),
                    ("bbd", 0usize.into()),
                ],
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::dense::DenseSolver;

    fn compare_with_dense(t: &Triplets, b: &[f64]) {
        let mut dense_x = b.to_vec();
        DenseSolver::default()
            .solve_in_place(t, &mut dense_x)
            .unwrap();
        let mut sparse_x = b.to_vec();
        SparseSolver::default()
            .solve_in_place(t, &mut sparse_x)
            .unwrap();
        for (s, d) in sparse_x.iter().zip(&dense_x) {
            assert!(
                (s - d).abs() < 1e-9 * d.abs().max(1.0),
                "sparse {s} vs dense {d}"
            );
        }
    }

    #[test]
    fn csc_merges_duplicates() {
        let mut t = Triplets::new(2);
        t.add(0, 0, 1.0);
        t.add(0, 0, 2.0);
        t.add(1, 1, 5.0);
        let m = SparseMatrix::from_triplets(&t);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.mul_vec(&[1.0, 1.0]), vec![3.0, 5.0]);
    }

    #[test]
    fn solves_diagonal() {
        let mut t = Triplets::new(3);
        t.add(0, 0, 2.0);
        t.add(1, 1, 4.0);
        t.add(2, 2, 8.0);
        compare_with_dense(&t, &[2.0, 4.0, 8.0]);
    }

    #[test]
    fn solves_tridiagonal_chain() {
        let n = 50;
        let mut t = Triplets::new(n);
        for i in 0..n {
            t.add(i, i, 2.5);
            if i + 1 < n {
                t.add(i, i + 1, -1.0);
                t.add(i + 1, i, -1.0);
            }
        }
        let b: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        compare_with_dense(&t, &b);
    }

    #[test]
    fn solves_with_pivoting_required() {
        // Structural zero on the diagonal.
        let mut t = Triplets::new(3);
        t.add(0, 1, 1.0);
        t.add(1, 0, 1.0);
        t.add(1, 2, 3.0);
        t.add(2, 1, -2.0);
        t.add(2, 2, 1.0);
        compare_with_dense(&t, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_star_topology() {
        // A hub node coupled to many leaves, like a shared detector load.
        let n = 61;
        let mut t = Triplets::new(n);
        t.add(0, 0, 1.0);
        for i in 1..n {
            t.add(i, i, 3.0);
            t.add(0, i, -0.5);
            t.add(i, 0, -0.5);
            t.add(0, 0, 0.5);
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
        compare_with_dense(&t, &b);
    }

    #[test]
    fn detects_singular() {
        let mut t = Triplets::new(2);
        t.add(0, 0, 1.0);
        t.add(0, 1, 1.0);
        let mut rhs = vec![1.0, 1.0];
        let err = SparseSolver::default()
            .solve_in_place(&t, &mut rhs)
            .unwrap_err();
        assert!(matches!(err, Error::SingularMatrix { .. }));
    }

    #[test]
    fn workspace_reuse_across_sizes() {
        let mut solver = SparseSolver::default();
        for n in [3usize, 10, 4] {
            let mut t = Triplets::new(n);
            for i in 0..n {
                t.add(i, i, 1.0 + i as f64);
            }
            let mut rhs: Vec<f64> = (0..n).map(|i| (1.0 + i as f64) * 2.0).collect();
            solver.solve_in_place(&t, &mut rhs).unwrap();
            for v in rhs {
                assert!((v - 2.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn transposed_solve_matches_transposed_system() {
        let n = 12;
        let mut t = Triplets::new(n);
        for i in 0..n {
            t.add(i, i, 5.0 + (i as f64 * 0.3).sin());
            t.add(i, (i + 3) % n, -0.7);
            t.add((i + 5) % n, i, 0.4);
        }
        let a = SparseMatrix::from_triplets(&t);
        let mut lu = SparseLu::new();
        lu.factor(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos()).collect();
        let mut x = b.clone();
        lu.solve_transposed(&mut x).unwrap();
        // Check Aᵀ x = b: (Aᵀ x)[c] = Σ_p vals[p] · x[rows[p]] over column c.
        for c in 0..n {
            let mut atx = 0.0;
            for p in a.col_ptr[c]..a.col_ptr[c + 1] {
                atx += a.vals[p] * x[a.rows[p]];
            }
            assert!((atx - b[c]).abs() < 1e-10, "col {c}: {atx} vs {}", b[c]);
        }
    }

    #[test]
    fn refactor_pivot_fallback_surfaces_ratio() {
        // Same pattern, but the second value set moves the column-0 pivot
        // winner from row 1 (magnitude 10) to row 0 (magnitude 10 vs 1),
        // forcing the replay to fall back to a full factorization.
        let mut t1 = Triplets::new(2);
        t1.add(0, 0, 1.0);
        t1.add(1, 0, 10.0);
        t1.add(0, 1, 1.0);
        t1.add(1, 1, 1.0);
        let a1 = SparseMatrix::from_triplets(&t1);
        let mut t2 = Triplets::new(2);
        t2.add(0, 0, 10.0);
        t2.add(1, 0, 1.0);
        t2.add(0, 1, 1.0);
        t2.add(1, 1, 1.0);
        let a2 = SparseMatrix::from_triplets(&t2);

        let mut lu = SparseLu::new();
        lu.factor(&a1).unwrap();
        assert!(lu.last_pivot_fallback().is_none());
        lu.refactor(&a2).unwrap();
        let fb = lu.last_pivot_fallback().expect("fallback recorded");
        assert_eq!(fb.column, 0);
        assert_eq!(fb.stored_row, 1);
        assert_eq!(fb.winning_row, 0);
        assert!((fb.ratio - 10.0).abs() < 1e-12, "{}", fb.ratio);
        assert_eq!(lu.stats().pivot_fallbacks, 1);
        assert!(fb.to_string().contains("column 0"), "{fb}");
        // The fallback still produced a correct factorization.
        let mut x = vec![11.0, 2.0];
        lu.solve(&mut x).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn residual_small_on_pseudorandom_sparse_system() {
        let n = 120;
        let mut t = Triplets::new(n);
        let mut state = 0xDEAD_BEEF_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            t.add(i, i, 6.0 + next());
            for _ in 0..4 {
                let j = ((next().abs() * n as f64) as usize).min(n - 1);
                t.add(i, j, next());
            }
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut x = b.clone();
        SparseSolver::default().solve_in_place(&t, &mut x).unwrap();
        let a = SparseMatrix::from_triplets(&t);
        let ax = a.mul_vec(&x);
        for (lhs, rhs) in ax.iter().zip(&b) {
            assert!((lhs - rhs).abs() < 1e-8, "{lhs} vs {rhs}");
        }
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use crate::linalg::dense::DenseSolver;
    use xrand::StdRng;

    /// A random diagonally dominant `n × n` triplet list (always solvable).
    fn diag_dominant_matrix(rng: &mut StdRng, n: usize) -> Triplets {
        let mut t = Triplets::new(n);
        for i in 0..n {
            t.add(i, i, rng.gen_range(4.0..10.0) * n as f64);
        }
        let nnz = rng.gen_range(0..4 * n);
        for _ in 0..nnz {
            t.add(
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(-1.0..1.0),
            );
        }
        t
    }

    #[test]
    fn sparse_matches_dense() {
        let mut rng = StdRng::seed_from_u64(0x5bac5e);
        for case in 0..64 {
            let n = rng.gen_range(2usize..40);
            let t = diag_dominant_matrix(&mut rng, n);
            let b: Vec<f64> = (0..n).map(|i| ((i + case) as f64 * 0.61).sin()).collect();
            let mut xd = b.clone();
            DenseSolver::default().solve_in_place(&t, &mut xd).unwrap();
            let mut xs = b.clone();
            SparseSolver::default().solve_in_place(&t, &mut xs).unwrap();
            for (s, d) in xs.iter().zip(&xd) {
                assert!((s - d).abs() < 1e-8 * d.abs().max(1.0), "{s} vs {d}");
            }
        }
    }

    #[test]
    fn csc_mul_matches_dense_mul() {
        let mut rng = StdRng::seed_from_u64(0xc5c);
        for _ in 0..64 {
            let n = rng.gen_range(2usize..25);
            let t = diag_dominant_matrix(&mut rng, n);
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
            let sparse = SparseMatrix::from_triplets(&t);
            let dense = crate::linalg::dense::DenseMatrix::from_triplets(&t);
            let ys = sparse.mul_vec(&x);
            let yd = dense.mul_vec(&x);
            for (a, b) in ys.iter().zip(&yd) {
                assert!((a - b).abs() < 1e-10 * b.abs().max(1.0), "{a} vs {b}");
            }
        }
    }
}
