//! Residual certification for linear solves.
//!
//! LU with partial pivoting is backward stable in theory, but the solver
//! stack below an analysis is exactly where silent corruption hides: a
//! pivot-growth blowup, a refactorization replay gone stale, bad memory, a
//! miscompiled kernel. This module makes every solve *prove* its answer:
//!
//! 1. after the triangular solves, the normalized ∞-norm **backward error**
//!    `‖Ax − b‖ / (‖A‖·‖x‖ + ‖b‖)` is computed from the original (unfactored)
//!    matrix — a couple of mat-vecs, negligible next to the factorization;
//! 2. when it exceeds the certification tolerance (`SOLVE_BWERR_TOL`,
//!    default `1e-8`), **one step of iterative refinement** re-solves for
//!    the residual correction and the backward error is re-measured;
//! 3. when refinement cannot reach tolerance either, the solve fails with
//!    [`Error::UntrustedSolution`], carrying a Hager/Higham style **1-norm
//!    condition estimate** so the report can distinguish "the matrix is
//!    hopeless" from "the factorization is rotten".
//!
//! A healthy solve (backward error around machine epsilon) takes path 1
//! only: the solution vector is never touched, which is what keeps the
//! experiment CSV baselines byte-identical with certification enabled.

use crate::error::Error;
use std::sync::OnceLock;

/// Default certification tolerance on the normalized backward error.
///
/// LU with partial pivoting on well-scaled MNA systems lands around
/// `1e-16`–`1e-13`; `1e-8` leaves orders of magnitude of slack for pivot
/// growth while still catching any genuinely corrupted factorization.
pub const DEFAULT_BWERR_TOL: f64 = 1e-8;

/// Certification tolerance: `SOLVE_BWERR_TOL` when set to a positive
/// finite number, [`DEFAULT_BWERR_TOL`] otherwise. Read once per process.
pub fn bwerr_tol() -> f64 {
    static TOL: OnceLock<f64> = OnceLock::new();
    *TOL.get_or_init(|| {
        std::env::var("SOLVE_BWERR_TOL")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|t| t.is_finite() && *t > 0.0)
            .unwrap_or(DEFAULT_BWERR_TOL)
    })
}

/// Whether `SPICIER_CONDEST` (set non-empty, not `"0"`) asks for a
/// condition estimate on *successful-but-slow* solves — ones that only
/// certified after a refinement step. Healthy solves (no refinement)
/// never pay for the extra triangular solves, and with the flag unset
/// the estimate is computed only on the `UntrustedSolution` failure
/// path, exactly as before. Read once per process.
pub fn condest_opt_in() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| std::env::var("SPICIER_CONDEST").is_ok_and(|v| !v.is_empty() && v != "0"))
}

/// Quality record of a certified linear solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveQuality {
    /// Normalized ∞-norm backward error `‖Ax−b‖ / (‖A‖‖x‖+‖b‖)` of the
    /// accepted solution.
    pub backward_error: f64,
    /// Iterative-refinement steps that were needed to reach tolerance
    /// (`0` for a healthy solve).
    pub refinement_steps: usize,
    /// Hager/Higham 1-norm condition estimate. Computed on the failure
    /// path, and — when `SPICIER_CONDEST` is set — on successful solves
    /// that needed a refinement step (it costs extra solves, so a
    /// healthy solve always carries `None`).
    pub cond_estimate: Option<f64>,
}

impl Default for SolveQuality {
    fn default() -> Self {
        Self {
            backward_error: 0.0,
            refinement_steps: 0,
            cond_estimate: None,
        }
    }
}

impl SolveQuality {
    /// Merges two quality records pessimistically: the larger backward
    /// error, the larger refinement count, the larger condition estimate.
    /// Used by analyses that perform many solves and report the worst.
    #[must_use]
    pub fn worst(self, other: SolveQuality) -> SolveQuality {
        SolveQuality {
            // `f64::max` drops NaN operands; a NaN record (non-finite
            // data, see `certify_in_place`) must dominate the merge.
            backward_error: if self.backward_error.is_nan() || other.backward_error.is_nan() {
                f64::NAN
            } else {
                self.backward_error.max(other.backward_error)
            },
            refinement_steps: self.refinement_steps.max(other.refinement_steps),
            cond_estimate: match (self.cond_estimate, other.cond_estimate) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
        }
    }
}

/// `‖v‖∞` (0 for an empty slice; NaN entries propagate as NaN).
pub fn inf_norm(v: &[f64]) -> f64 {
    // `f64::max` would silently drop NaN operands, so a poisoned vector
    // has to be detected explicitly — a NaN norm must fail certification,
    // not vanish from it.
    let mut m = 0.0f64;
    for x in v {
        if x.is_nan() {
            return f64::NAN;
        }
        m = m.max(x.abs());
    }
    m
}

/// Normalized backward error `r / (‖A‖·‖x‖ + ‖b‖)` from precomputed norms.
///
/// A zero denominator with a zero residual is a perfect solve (`0`); a
/// zero denominator with a nonzero residual is reported as `∞`. NaN inputs
/// yield NaN, which callers must treat as failed certification (gate with
/// [`uncertified`]).
pub fn backward_error(residual_inf: f64, norm_a: f64, x_inf: f64, b_inf: f64) -> f64 {
    let denom = norm_a * x_inf + b_inf;
    if denom == 0.0 {
        if residual_inf == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        residual_inf / denom
    }
}

/// The certification gate: `true` when `bwerr` fails `tol`. A NaN
/// backward error counts as failed, never as passed.
pub(crate) fn uncertified(bwerr: f64, tol: f64) -> bool {
    bwerr.is_nan() || bwerr > tol
}

/// Hager/Higham 1-norm condition estimate `‖A‖₁ · est(‖A⁻¹‖₁)`.
///
/// `‖A⁻¹‖₁` is estimated by the classic Hager iteration: repeatedly solve
/// `A y = x` and `Aᵀ z = sign(y)`, moving `x` to the unit vector where
/// `|z|` peaks, until the estimate stops growing (at most 5 rounds — the
/// iteration almost always converges in 2–3). Each round costs one
/// forward and one transposed triangular solve on the existing factors.
///
/// Returns `None` when a solve fails or produces non-finite values, which
/// callers map to an infinite condition estimate.
pub fn condest_1norm<S, St>(
    n: usize,
    norm_a_1: f64,
    mut solve: S,
    mut solve_transposed: St,
) -> Option<f64>
where
    S: FnMut(&mut [f64]) -> Result<(), Error>,
    St: FnMut(&mut [f64]) -> Result<(), Error>,
{
    if n == 0 {
        return Some(0.0);
    }
    let mut x = vec![1.0 / n as f64; n];
    let mut est = 0.0f64;
    for _ in 0..5 {
        let mut y = x.clone();
        solve(&mut y).ok()?;
        let y_norm: f64 = y.iter().map(|v| v.abs()).sum();
        if !y_norm.is_finite() {
            return None;
        }
        est = est.max(y_norm);
        let mut z: Vec<f64> = y
            .iter()
            .map(|v| if *v >= 0.0 { 1.0 } else { -1.0 })
            .collect();
        solve_transposed(&mut z).ok()?;
        let mut j = 0usize;
        let mut z_inf = 0.0f64;
        for (i, v) in z.iter().enumerate() {
            if v.abs() > z_inf {
                z_inf = v.abs();
                j = i;
            }
        }
        if !z_inf.is_finite() {
            return None;
        }
        let ztx: f64 = z.iter().zip(&x).map(|(a, b)| a * b).sum();
        if z_inf <= ztx {
            break;
        }
        x.fill(0.0);
        x[j] = 1.0;
    }
    Some(est * norm_a_1)
}

/// Certifies the solution `x` of `A x = b` in place, refining it once if
/// the backward error exceeds [`bwerr_tol`].
///
/// * `residual(x, out)` must write `out = b − A x` using the **original**
///   matrix values (triplets or a retained copy — the factors are not it);
/// * `solve` must apply the existing factorization (`out ← A⁻¹ out`);
/// * `solve_transposed` must apply the transposed factorization, and is
///   only called on the failure path for the condition estimate.
///
/// On success returns the measured [`SolveQuality`] and leaves `x` either
/// untouched (healthy solve) or refined to tolerance. On failure `x` holds
/// the last refined iterate and [`Error::UntrustedSolution`] is returned.
///
/// A NaN backward error (non-finite `b` or `x`) is **not** an error: the
/// quality record carries the NaN and `x` is left untouched. That failure
/// class belongs to the caller's non-finite guards — the Newton loop
/// rejects non-finite iterates and escalates its recovery ladder, which a
/// non-retriable error from here would forbid.
///
/// # Errors
///
/// [`Error::UntrustedSolution`] when one refinement step cannot bring the
/// (finite) backward error under tolerance; any error from `solve`
/// propagates.
pub fn certify_in_place<Res, S, St>(
    x: &mut [f64],
    b: &[f64],
    norm_a_inf: f64,
    norm_a_1: f64,
    mut residual: Res,
    mut solve: S,
    mut solve_transposed: St,
) -> Result<SolveQuality, Error>
where
    Res: FnMut(&[f64], &mut [f64]),
    S: FnMut(&mut [f64]) -> Result<(), Error>,
    St: FnMut(&mut [f64]) -> Result<(), Error>,
{
    let tol = bwerr_tol();
    let b_inf = inf_norm(b);
    let mut r = vec![0.0; x.len()];
    residual(x, &mut r);
    let mut bwerr = backward_error(inf_norm(&r), norm_a_inf, inf_norm(x), b_inf);
    let mut steps = 0usize;
    if bwerr.is_nan() {
        // Non-finite data (NaN in `b` or the computed `x`): no residual
        // can be measured and refinement is futile. Record the NaN
        // honestly instead of failing — this failure class belongs to the
        // caller's non-finite guards: the Newton loop rejects non-finite
        // iterates and *escalates its recovery ladder*, which an eager
        // (non-retriable) `UntrustedSolution` here would forbid. A NaN
        // usually means a bad bias region, not a corrupt factorization.
        return Ok(SolveQuality {
            backward_error: f64::NAN,
            refinement_steps: 0,
            cond_estimate: None,
        });
    }
    if uncertified(bwerr, tol) {
        // One step of iterative refinement: d = A⁻¹ r, x ← x + d. The
        // residual is computed from the original matrix, so this corrects
        // ordinary rounding accumulation; it cannot (and must not) rescue
        // a genuinely corrupted factorization.
        solve(&mut r)?;
        for (xi, di) in x.iter_mut().zip(&r) {
            *xi += *di;
        }
        steps = 1;
        residual(x, &mut r);
        bwerr = backward_error(inf_norm(&r), norm_a_inf, inf_norm(x), b_inf);
        if uncertified(bwerr, tol) {
            let cond = condest_1norm(x.len(), norm_a_1, &mut solve, &mut solve_transposed)
                .unwrap_or(f64::INFINITY);
            if crate::telemetry::enabled() {
                crate::telemetry::record_failure(
                    "UntrustedSolution",
                    &format!(
                        "backward error {bwerr:.3e} above tolerance {tol:.3e} after {steps} \
                         refinement step(s), cond estimate {cond:.3e}"
                    ),
                );
            }
            return Err(Error::UntrustedSolution {
                backward_error: bwerr,
                tolerance: tol,
                refinement_steps: steps,
                cond_estimate: cond,
            });
        }
    }
    // A solve that only certified after refinement is the "slow but
    // successful" class the telemetry summary wants a condition estimate
    // for; the extra solves are opt-in via `SPICIER_CONDEST`.
    let cond_estimate = if steps > 0 && condest_opt_in() {
        condest_1norm(x.len(), norm_a_1, &mut solve, &mut solve_transposed)
    } else {
        None
    };
    Ok(SolveQuality {
        backward_error: bwerr,
        refinement_steps: steps,
        cond_estimate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_error_edge_cases() {
        assert_eq!(backward_error(0.0, 0.0, 0.0, 0.0), 0.0);
        assert_eq!(backward_error(1.0, 0.0, 0.0, 0.0), f64::INFINITY);
        assert!((backward_error(1.0, 2.0, 3.0, 4.0) - 0.1).abs() < 1e-15);
    }

    #[test]
    fn inf_norm_basics() {
        assert_eq!(inf_norm(&[]), 0.0);
        assert_eq!(inf_norm(&[1.0, -3.0, 2.0]), 3.0);
        assert!(inf_norm(&[1.0, f64::NAN]).is_nan(), "NaN must not vanish");
    }

    #[test]
    fn uncertified_gate_fails_nan_and_inf() {
        assert!(!uncertified(1.0e-16, 1.0e-8));
        assert!(!uncertified(1.0e-8, 1.0e-8));
        assert!(uncertified(1.1e-8, 1.0e-8));
        assert!(uncertified(f64::NAN, 1.0e-8));
        assert!(uncertified(f64::INFINITY, 1.0e-8));
    }

    #[test]
    fn nan_data_is_recorded_not_errored() {
        // NaN in the system belongs to the caller's non-finite guards
        // (the Newton ladder must stay free to escalate), so the
        // certifier returns Ok with an honest NaN record and leaves `x`
        // untouched instead of raising a non-retriable error.
        let mut x = [1.0];
        let q = certify_in_place(
            &mut x,
            &[f64::NAN],
            1.0,
            1.0,
            |_x, out| out[0] = f64::NAN,
            |_v| panic!("refinement must not run on NaN data"),
            |_v| panic!("condest must not run on NaN data"),
        )
        .unwrap();
        assert!(q.backward_error.is_nan());
        assert_eq!(q.refinement_steps, 0);
        assert_eq!(x[0], 1.0);
    }

    #[test]
    fn worst_merge_is_nan_pessimistic() {
        let nan_q = SolveQuality {
            backward_error: f64::NAN,
            ..SolveQuality::default()
        };
        assert!(nan_q.worst(SolveQuality::default()).backward_error.is_nan());
        assert!(SolveQuality::default().worst(nan_q).backward_error.is_nan());
        let a = SolveQuality {
            backward_error: 2.0e-12,
            ..SolveQuality::default()
        };
        let b = SolveQuality {
            backward_error: 3.0e-12,
            ..SolveQuality::default()
        };
        assert_eq!(a.worst(b).backward_error, 3.0e-12);
    }

    #[test]
    fn condest_identity_is_one() {
        let est = condest_1norm(5, 1.0, |_v| Ok(()), |_v| Ok(())).unwrap();
        assert!((est - 1.0).abs() < 1e-12, "{est}");
    }

    #[test]
    fn condest_diagonal_matrix() {
        // A = diag(1, 1e-6): ‖A‖₁ = 1, ‖A⁻¹‖₁ = 1e6, cond = 1e6.
        let apply_inv = |v: &mut [f64]| {
            v[1] *= 1.0e6;
            Ok(())
        };
        let est = condest_1norm(2, 1.0, apply_inv, apply_inv).unwrap();
        assert!((est - 1.0e6).abs() < 1.0, "{est}");
    }

    #[test]
    fn certify_healthy_solve_does_not_touch_x() {
        // A = I, exact solve: residual is identically zero.
        let b = [1.0, -2.0, 3.0];
        let mut x = b;
        let q = certify_in_place(
            &mut x,
            &b,
            1.0,
            1.0,
            |x, out| {
                for i in 0..3 {
                    out[i] = b[i] - x[i];
                }
            },
            |_v| Ok(()),
            |_v| Ok(()),
        )
        .unwrap();
        assert_eq!(x, b);
        assert_eq!(q.backward_error, 0.0);
        assert_eq!(q.refinement_steps, 0);
        assert_eq!(q.cond_estimate, None);
    }

    #[test]
    fn refinement_rescues_slightly_wrong_solver() {
        // A = I but the "solver" scales by (1 − 1e-5): the first answer
        // misses tolerance, one refinement step lands ~1e-10.
        let b = [2.0, -1.0, 0.5];
        let bad_solve = |v: &mut [f64]| {
            for vi in v.iter_mut() {
                *vi *= 1.0 - 1.0e-5;
            }
            Ok(())
        };
        let mut x = b;
        bad_solve(&mut x).unwrap();
        let q = certify_in_place(
            &mut x,
            &b,
            1.0,
            1.0,
            |x, out| {
                for i in 0..3 {
                    out[i] = b[i] - x[i];
                }
            },
            bad_solve,
            bad_solve,
        )
        .unwrap();
        assert_eq!(q.refinement_steps, 1);
        assert!(q.backward_error <= bwerr_tol());
        for (xi, bi) in x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-9, "{xi} vs {bi}");
        }
    }

    #[test]
    fn hopeless_solver_fails_certification_with_cond_estimate() {
        // The "solver" halves everything: refinement converges far too
        // slowly to reach tolerance in one step.
        let b = [1.0, 1.0];
        let half_solve = |v: &mut [f64]| {
            for vi in v.iter_mut() {
                *vi *= 0.5;
            }
            Ok(())
        };
        let mut x = b;
        half_solve(&mut x).unwrap();
        let err = certify_in_place(
            &mut x,
            &b,
            1.0,
            1.0,
            |x, out| {
                for i in 0..2 {
                    out[i] = b[i] - x[i];
                }
            },
            half_solve,
            half_solve,
        )
        .unwrap_err();
        match err {
            Error::UntrustedSolution {
                backward_error,
                tolerance,
                refinement_steps,
                cond_estimate,
            } => {
                assert!(backward_error > tolerance);
                assert_eq!(refinement_steps, 1);
                assert!(cond_estimate.is_finite() && cond_estimate > 0.0);
            }
            other => panic!("expected UntrustedSolution, got {other:?}"),
        }
    }

    #[test]
    fn worst_merges_pessimistically() {
        let a = SolveQuality {
            backward_error: 1e-12,
            refinement_steps: 0,
            cond_estimate: None,
        };
        let b = SolveQuality {
            backward_error: 1e-10,
            refinement_steps: 1,
            cond_estimate: Some(1e6),
        };
        let w = a.worst(b);
        assert_eq!(w.backward_error, 1e-10);
        assert_eq!(w.refinement_steps, 1);
        assert_eq!(w.cond_estimate, Some(1e6));
    }
}
