//! Minimal complex arithmetic and a complex dense LU for AC analysis.
//!
//! AC systems are solved once per frequency point (not thousands of times
//! per run like transient), so a dense kernel is the right tool and no
//! external complex-number dependency is warranted.

// Index-based loops are kept in this numeric kernel: the indices are the
// mathematical objects (pivot rows, column positions).
#![allow(clippy::needless_range_loop)]

use crate::error::Error;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex number (f64 parts).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates `re + j·im`.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// A purely real value.
    pub fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// A purely imaginary value.
    pub fn imag(im: f64) -> Self {
        Self { re: 0.0, im }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Phase in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude in decibels (`20·log10|z|`).
    pub fn db(self) -> f64 {
        20.0 * self.abs().log10()
    }

    /// Phase in degrees.
    pub fn phase_deg(self) -> f64 {
        self.arg().to_degrees()
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.re * rhs.re + rhs.im * rhs.im;
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// Dense complex matrix with LU solve (partial pivoting by magnitude).
#[derive(Debug, Clone)]
pub struct ComplexDenseMatrix {
    n: usize,
    data: Vec<Complex>,
}

impl ComplexDenseMatrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![Complex::ZERO; n * n],
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Adds `value` at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn add(&mut self, row: usize, col: usize, value: Complex) {
        assert!(row < self.n && col < self.n, "index out of bounds");
        self.data[row * self.n + col] += value;
    }

    /// Solves `A x = b` in place (`rhs` holds `b` on entry, `x` on exit),
    /// destroying the matrix, and certifies the result by residual against
    /// a retained copy of the original entries (see `linalg::verify` for
    /// the certification contract). One step of iterative refinement is
    /// applied when the backward error misses tolerance.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SingularMatrix`] on pivot underflow, and
    /// [`Error::UntrustedSolution`] when refinement cannot bring the
    /// backward error under tolerance. The condition estimate on the
    /// failure path is the diagonal-pivot ratio `max|uₖₖ|/min|uₖₖ|` — a
    /// cheap lower-bound stand-in for the Hager estimate used by the real
    /// kernels, adequate for a once-per-frequency solve.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len() != dim()`.
    pub fn solve_in_place(mut self, rhs: &mut [Complex]) -> Result<super::SolveQuality, Error> {
        let n = self.n;
        assert_eq!(rhs.len(), n, "rhs dimension mismatch");
        // Retain the original entries: the factorization below overwrites
        // them, and the residual must be measured against the real matrix.
        let original = self.data.clone();
        let b: Vec<Complex> = rhs.to_vec();
        let perm = self.lu_factor()?;
        if crate::chaos::perturb_lu_active() && n > 0 {
            // Chaos drill: corrupt one pivot; only the certifier notices.
            let k = n / 2;
            self.data[perm[k] * n + k] = self.data[perm[k] * n + k] * Complex::real(1.0e3);
        }
        self.lu_solve(&perm, rhs);

        let tol = super::verify::bwerr_tol();
        let norm_a = {
            let mut worst = 0.0f64;
            for r in 0..n {
                let sum: f64 = original[r * n..(r + 1) * n].iter().map(|z| z.abs()).sum();
                worst = worst.max(sum);
            }
            worst
        };
        let b_inf = b.iter().fold(0.0f64, |m, z| m.max(z.abs()));
        let residual = |x: &[Complex]| -> Vec<Complex> {
            let mut r = b.clone();
            for row in 0..n {
                let mut ax = Complex::ZERO;
                for c in 0..n {
                    ax += original[row * n + c] * x[c];
                }
                r[row] = r[row] - ax;
            }
            r
        };
        // `f64::max` drops NaN operands, so a poisoned vector is detected
        // explicitly — its norm must fail certification, not vanish.
        let cinf = |v: &[Complex]| -> f64 {
            let mut m = 0.0f64;
            for z in v {
                let a = z.abs();
                if a.is_nan() {
                    return f64::NAN;
                }
                m = m.max(a);
            }
            m
        };
        let bwerr_of = |x: &[Complex], r: &[Complex]| {
            super::verify::backward_error(cinf(r), norm_a, cinf(x), b_inf)
        };
        let mut r = residual(rhs);
        let mut bwerr = bwerr_of(rhs, &r);
        let mut steps = 0usize;
        if bwerr.is_nan() {
            // Non-finite data: no residual can be measured and refinement
            // is futile. Record the NaN honestly and leave the failure to
            // the caller's non-finite guards (see `verify::certify_in_place`).
            return Ok(super::SolveQuality {
                backward_error: f64::NAN,
                refinement_steps: 0,
                cond_estimate: None,
            });
        }
        if super::verify::uncertified(bwerr, tol) {
            self.lu_solve(&perm, &mut r);
            for (xi, di) in rhs.iter_mut().zip(&r) {
                *xi += *di;
            }
            steps = 1;
            r = residual(rhs);
            bwerr = bwerr_of(rhs, &r);
            if super::verify::uncertified(bwerr, tol) {
                let mut max_p = 0.0f64;
                let mut min_p = f64::INFINITY;
                for k in 0..n {
                    let p = self.data[perm[k] * n + k].abs();
                    max_p = max_p.max(p);
                    min_p = min_p.min(p);
                }
                return Err(Error::UntrustedSolution {
                    backward_error: bwerr,
                    tolerance: tol,
                    refinement_steps: steps,
                    cond_estimate: if min_p > 0.0 {
                        max_p / min_p
                    } else {
                        f64::INFINITY
                    },
                });
            }
        }
        Ok(super::SolveQuality {
            backward_error: bwerr,
            refinement_steps: steps,
            cond_estimate: None,
        })
    }

    /// Factors `self` in place with partial pivoting by magnitude,
    /// returning the row permutation.
    fn lu_factor(&mut self) -> Result<Vec<usize>, Error> {
        let n = self.n;
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            let mut pivot_row = k;
            let mut pivot_mag = self.data[perm[k] * n + k].abs();
            for r in (k + 1)..n {
                let mag = self.data[perm[r] * n + k].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if pivot_mag < 1e-13 {
                return Err(Error::SingularMatrix { column: k });
            }
            perm.swap(k, pivot_row);
            let pk = perm[k];
            let pivot = self.data[pk * n + k];
            for r in (k + 1)..n {
                let pr = perm[r];
                let factor = self.data[pr * n + k] / pivot;
                self.data[pr * n + k] = factor;
                if factor.abs() != 0.0 {
                    for c in (k + 1)..n {
                        let sub = factor * self.data[pk * n + c];
                        self.data[pr * n + c] = self.data[pr * n + c] - sub;
                    }
                }
            }
        }
        Ok(perm)
    }

    /// Applies the factors to solve `A x = b` in place.
    fn lu_solve(&self, perm: &[usize], rhs: &mut [Complex]) {
        let n = self.n;
        // Forward substitution.
        let mut y = vec![Complex::ZERO; n];
        for r in 0..n {
            let pr = perm[r];
            let mut sum = rhs[pr];
            for (c, &yc) in y.iter().enumerate().take(r) {
                sum = sum - self.data[pr * n + c] * yc;
            }
            y[r] = sum;
        }
        // Backward substitution.
        for r in (0..n).rev() {
            let pr = perm[r];
            let mut sum = y[r];
            for c in (r + 1)..n {
                sum = sum - self.data[pr * n + c] * rhs[c];
            }
            rhs[r] = sum / self.data[pr * n + r];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert!(close(a + b, Complex::new(4.0, 1.0)));
        assert!(close(a - b, Complex::new(-2.0, 3.0)));
        assert!(close(a * b, Complex::new(5.0, 5.0)));
        assert!(close((a / b) * b, a));
        assert!(close(-a, Complex::new(-1.0, -2.0)));
        assert!(close(a.conj(), Complex::new(1.0, -2.0)));
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
        assert!((Complex::imag(1.0).arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((Complex::real(10.0).db() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn solves_complex_2x2() {
        // (1+j)x + y = 2;  x + (1-j)y = 0
        let mut m = ComplexDenseMatrix::zeros(2);
        m.add(0, 0, Complex::new(1.0, 1.0));
        m.add(0, 1, Complex::ONE);
        m.add(1, 0, Complex::ONE);
        m.add(1, 1, Complex::new(1.0, -1.0));
        let mut rhs = vec![Complex::new(2.0, 0.0), Complex::ZERO];
        // Verify by residual (matrix is consumed).
        let a00 = Complex::new(1.0, 1.0);
        let a11 = Complex::new(1.0, -1.0);
        m.clone().solve_in_place(&mut rhs).unwrap();
        let r0 = a00 * rhs[0] + rhs[1];
        let r1 = rhs[0] + a11 * rhs[1];
        assert!(close(r0, Complex::new(2.0, 0.0)), "{r0:?}");
        assert!(close(r1, Complex::ZERO), "{r1:?}");
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let mut m = ComplexDenseMatrix::zeros(2);
        m.add(0, 1, Complex::real(2.0));
        m.add(1, 0, Complex::real(1.0));
        let mut rhs = vec![Complex::real(4.0), Complex::real(3.0)];
        m.solve_in_place(&mut rhs).unwrap();
        assert!(close(rhs[0], Complex::real(3.0)));
        assert!(close(rhs[1], Complex::real(2.0)));
    }

    #[test]
    fn detects_singular() {
        let mut m = ComplexDenseMatrix::zeros(2);
        m.add(0, 0, Complex::ONE);
        m.add(1, 0, Complex::ONE);
        let mut rhs = vec![Complex::ONE, Complex::ONE];
        assert!(matches!(
            m.solve_in_place(&mut rhs),
            Err(Error::SingularMatrix { .. })
        ));
    }

    #[test]
    fn healthy_solve_reports_tiny_backward_error() {
        let mut m = ComplexDenseMatrix::zeros(2);
        m.add(0, 0, Complex::new(1.0, 1.0));
        m.add(0, 1, Complex::ONE);
        m.add(1, 0, Complex::ONE);
        m.add(1, 1, Complex::new(1.0, -1.0));
        let mut rhs = vec![Complex::new(2.0, 0.0), Complex::ZERO];
        let q = m.solve_in_place(&mut rhs).unwrap();
        assert_eq!(q.refinement_steps, 0);
        assert!(q.backward_error < 1e-12, "{}", q.backward_error);
    }

    #[test]
    fn perturbed_factorization_fails_certification() {
        let mut m = ComplexDenseMatrix::zeros(3);
        for i in 0..3 {
            m.add(i, i, Complex::new(4.0, 1.0));
        }
        m.add(0, 1, Complex::real(1.0));
        m.add(1, 2, Complex::imag(-1.0));
        m.add(2, 0, Complex::real(0.5));
        let mut rhs = vec![Complex::ONE; 3];
        let err = crate::chaos::with_perturb_lu(|| m.solve_in_place(&mut rhs).unwrap_err());
        assert!(err.is_untrusted_solution(), "{err:?}");
    }
}
