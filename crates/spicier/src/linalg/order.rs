//! Fill-reducing ordering for the sparse LU kernel.
//!
//! Gilbert–Peierls factors columns in the order they are given; on
//! generator-shaped circuit matrices (long stage chains hanging off a few
//! shared rails) the natural MNA order eliminates the high-degree rail
//! nodes first, turning their neighbourhoods into near-dense cliques and
//! driving fill — and with it factor/refactor time — superlinear. This
//! module computes a **minimum-degree elimination order** on the
//! symmetrized nonzero pattern (the classic fill-graph variant of the
//! approximate-minimum-degree family KLU uses): chain interiors are
//! eliminated first, shared rails last, and the factors stay within a
//! small constant of the matrix nonzeros.
//!
//! The ordering is purely structural: it is computed once per sparsity
//! pattern and cached by [`SparseSolver`](super::sparse::SparseSolver)
//! alongside the stamp-slot map, so the per-Newton-iteration cost is zero.
//! Numerical safety is untouched — the permuted matrix is still factored
//! with full partial pivoting and certified by the residual gate.

// Index-based loops are kept in these numeric kernels: the indices are
// the mathematical objects (CSC positions, local rows, pool slots).
#![allow(clippy::needless_range_loop)]

/// Work cap multiplier: the ordering gives up (falling back to natural
/// order for the remaining nodes) once the total adjacency-merge work
/// exceeds `WORK_CAP_FACTOR · nnz + n`. Circuit graphs stay far below
/// this; the cap only protects pathological dense-ish inputs, where the
/// natural order is no worse than a quadratic-time ordering attempt.
const WORK_CAP_FACTOR: usize = 64;

/// Builds the symmetrized adjacency (pattern of `A + Aᵀ`, diagonal
/// dropped) of a CSC pattern, as sorted per-node neighbour lists.
pub(crate) fn symmetric_adjacency(n: usize, col_ptr: &[usize], rows: &[usize]) -> Vec<Vec<u32>> {
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for c in 0..n {
        for p in col_ptr[c]..col_ptr[c + 1] {
            let r = rows[p];
            if r != c {
                adj[r].push(c as u32);
                adj[c].push(r as u32);
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    adj
}

/// Computes a minimum-degree elimination order for the symmetrized
/// pattern of the `n × n` CSC matrix described by `col_ptr`/`rows`.
///
/// Returns the permutation as `pinv`: `pinv[original] = position in the
/// elimination order`, i.e. the permuted matrix is
/// `A'[pinv[r], pinv[c]] = A[r, c]`. The result is always a valid
/// permutation; when the work cap trips, the tail of the order is the
/// natural order of the remaining nodes.
pub fn min_degree_pinv(n: usize, col_ptr: &[usize], rows: &[usize]) -> Vec<usize> {
    let mut adj = symmetric_adjacency(n, col_ptr, rows);
    let nnz = rows.len();
    let work_cap = WORK_CAP_FACTOR * nnz + n;
    let mut work = 0usize;

    // Lazy-deletion min-heap on (degree, node): stale entries (degree
    // changed or node already eliminated) are skipped on pop. Ties break
    // toward the lower node index, keeping the order deterministic.
    let mut heap = std::collections::BinaryHeap::with_capacity(2 * n);
    for (i, list) in adj.iter().enumerate() {
        heap.push(std::cmp::Reverse((list.len() as u64, i as u32)));
    }
    let mut eliminated = vec![false; n];
    let mut pinv = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut merged: Vec<u32> = Vec::new();

    while let Some(std::cmp::Reverse((deg, v))) = heap.pop() {
        let v = v as usize;
        if eliminated[v] || adj[v].len() as u64 != deg {
            continue; // stale heap entry
        }
        eliminated[v] = true;
        pinv[v] = next;
        next += 1;
        if work >= work_cap {
            continue; // cap tripped: stop updating, drain by stale degrees
        }
        // Fill-graph update: v's neighbours become a clique. Each
        // neighbour's list is merged with v's (minus the two endpoints
        // and anything already eliminated).
        let clique = std::mem::take(&mut adj[v]);
        for &u in &clique {
            let u = u as usize;
            if eliminated[u] {
                continue;
            }
            merged.clear();
            let (a, b) = (&adj[u], &clique);
            let (mut i, mut j) = (0usize, 0usize);
            while i < a.len() || j < b.len() {
                let cand = match (a.get(i), b.get(j)) {
                    (Some(&x), Some(&y)) => {
                        if x <= y {
                            if x == y {
                                j += 1;
                            }
                            i += 1;
                            x
                        } else {
                            j += 1;
                            y
                        }
                    }
                    (Some(&x), None) => {
                        i += 1;
                        x
                    }
                    (None, Some(&y)) => {
                        j += 1;
                        y
                    }
                    (None, None) => break,
                };
                let cu = cand as usize;
                if cu != u && cu != v && !eliminated[cu] {
                    merged.push(cand);
                }
            }
            work += a.len() + b.len();
            adj[u].clear();
            adj[u].extend_from_slice(&merged);
            heap.push(std::cmp::Reverse((adj[u].len() as u64, u as u32)));
        }
    }
    // Any node never reached through the heap (cannot normally happen,
    // every node is pushed once) gets appended in natural order.
    for (i, slot) in pinv.iter_mut().enumerate() {
        if *slot == usize::MAX {
            *slot = next;
            next += 1;
            debug_assert!(next <= n, "pinv overflow at node {i}");
        }
    }
    debug_assert_eq!(next, n);
    pinv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::{SparseLu, SparseMatrix, Triplets};

    fn assert_is_permutation(pinv: &[usize]) {
        let mut seen = vec![false; pinv.len()];
        for &p in pinv {
            assert!(p < pinv.len() && !seen[p], "not a permutation: {pinv:?}");
            seen[p] = true;
        }
    }

    /// Hub-and-chain matrix: node 0 couples to every 10th chain node,
    /// the shape that blows up the natural elimination order.
    fn hub_chain(n: usize) -> Triplets {
        let mut t = Triplets::new(n);
        for i in 0..n {
            t.add(i, i, 4.0 + (i % 3) as f64);
            if i + 1 < n {
                t.add(i, i + 1, -1.0);
                t.add(i + 1, i, -1.0);
            }
            if i % 10 == 0 && i > 0 {
                t.add(0, i, -0.1);
                t.add(i, 0, -0.1);
            }
        }
        t
    }

    fn permuted(t: &Triplets, pinv: &[usize]) -> Triplets {
        let mut out = Triplets::new(t.dim());
        for &(r, c, v) in t.entries() {
            out.add(pinv[r], pinv[c], v);
        }
        out
    }

    fn factor_nnz(t: &Triplets) -> usize {
        let a = SparseMatrix::from_triplets(t);
        let mut lu = SparseLu::new();
        lu.factor(&a).expect("nonsingular");
        lu.factor_nnz()
    }

    #[test]
    fn returns_valid_permutation() {
        for n in [1usize, 2, 7, 50, 321] {
            let t = hub_chain(n);
            let a = SparseMatrix::from_triplets(&t);
            let pinv = min_degree_pinv(n, a.col_ptr(), a.rows());
            assert_is_permutation(&pinv);
        }
    }

    #[test]
    fn empty_and_diagonal_patterns() {
        let pinv = min_degree_pinv(0, &[0], &[]);
        assert!(pinv.is_empty());
        let mut t = Triplets::new(4);
        for i in 0..4 {
            t.add(i, i, 1.0);
        }
        let a = SparseMatrix::from_triplets(&t);
        let pinv = min_degree_pinv(4, a.col_ptr(), a.rows());
        assert_is_permutation(&pinv);
    }

    #[test]
    fn hub_is_eliminated_late() {
        let n = 200;
        let t = hub_chain(n);
        let a = SparseMatrix::from_triplets(&t);
        let pinv = min_degree_pinv(n, a.col_ptr(), a.rows());
        assert_is_permutation(&pinv);
        // The hub has degree ~n/10; minimum degree must defer it past the
        // chain interiors.
        assert!(
            pinv[0] > n / 2,
            "hub eliminated at position {} of {n}",
            pinv[0]
        );
    }

    #[test]
    fn ordering_cuts_fill_on_hub_chain() {
        let n = 640;
        let t = hub_chain(n);
        let a = SparseMatrix::from_triplets(&t);
        let pinv = min_degree_pinv(n, a.col_ptr(), a.rows());
        let natural = factor_nnz(&t);
        let ordered = factor_nnz(&permuted(&t, &pinv));
        assert!(
            ordered * 2 < natural,
            "ordered fill {ordered} vs natural {natural}"
        );
    }

    #[test]
    fn asymmetric_pattern_is_symmetrized() {
        // Strictly triangular coupling: the symmetrized graph is a chain.
        let n = 30;
        let mut t = Triplets::new(n);
        for i in 0..n {
            t.add(i, i, 2.0);
            if i + 1 < n {
                t.add(i, i + 1, -1.0); // upper only
            }
        }
        let a = SparseMatrix::from_triplets(&t);
        let pinv = min_degree_pinv(n, a.col_ptr(), a.rows());
        assert_is_permutation(&pinv);
    }
}
