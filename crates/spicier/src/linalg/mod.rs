//! Linear-system kernels used by the MNA solver.
//!
//! Circuit matrices are small (tens of unknowns for a single CML cell) to
//! medium (hundreds of unknowns for the 60-buffer load-sharing experiment of
//! the paper's Figure 14), very sparse (≈ 4–6 nonzeros per row) and need to
//! be factored thousands of times per transient run. Two kernels are
//! provided:
//!
//! * [`dense`]: LU with partial pivoting on a row-major dense matrix —
//!   simple, cache-friendly and used as the reference implementation and
//!   for systems below [`DENSE_CUTOFF`] unknowns;
//! * [`sparse`]: a left-looking Gilbert–Peierls LU with partial pivoting
//!   on compressed-sparse-column storage, used for larger systems.
//!
//! Both kernels implement [`Solver`], and [`AutoSolver`] picks between them
//! by size. The sparse kernel is property-tested against the dense one.

pub mod bbd;
pub mod complex;
pub mod dense;
pub mod order;
pub mod sparse;
pub mod verify;

pub use complex::{Complex, ComplexDenseMatrix};
pub use dense::DenseMatrix;
pub use sparse::{LuStats, PivotFallback, SolverStats, SparseLu, SparseMatrix, StampMap, Triplets};
pub use verify::SolveQuality;

use crate::error::Error;

/// Unknown-count threshold above which [`AutoSolver`] switches from the
/// dense kernel to the sparse kernel, calibrated against the cutoff bench
/// (`cargo bench -p cml-bench --bench solver -- cutoff`): with the
/// cached-pattern refactorization fast path the sparse kernel wins on
/// circuit-like sparsity at every measured size from 20 unknowns up —
/// including the assembled FIG3-chain stamps at 32 unknowns — so the
/// crossover sits at the bottom of the measured band. The bench asserts
/// this constant stays inside the measured crossover band, so a kernel
/// regression that moves the crossover shows up as a bench failure rather
/// than silent mis-selection.
///
/// Existing experiment pipelines do NOT use this value: they pin
/// [`EXPERIMENT_DENSE_CUTOFF`] instead, because moving circuits across
/// the cutoff changes which kernel's rounding they see and breaks
/// byte-stable baselines.
pub const DENSE_CUTOFF: usize = 20;

/// Kernel-selection threshold pinned by the experiment pipelines
/// (`SolveWorkspace`), frozen at the historical value of 80.
///
/// The measured performance crossover is [`DENSE_CUTOFF`] = 20, but
/// moving a circuit across the cutoff changes which kernel's rounding it
/// sees, and the adaptive transient step control amplifies that last-bit
/// difference into different time grids and recovery-ladder decisions
/// (observed on fig7/robustness artifacts), breaking byte-stable
/// experiment baselines. Analyses therefore construct their solver with
/// [`AutoSolver::with_cutoff`]`(EXPERIMENT_DENSE_CUTOFF)`. Lower this
/// only together with a deliberate baseline refresh.
pub const EXPERIMENT_DENSE_CUTOFF: usize = 80;

/// A linear solver for `A x = b` where `A` is assembled from triplets.
pub trait Solver {
    /// Factors the matrix and solves in place: on entry `rhs` is `b`, on
    /// exit it is `x`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SingularMatrix`] when a pivot underflows.
    fn solve_in_place(&mut self, triplets: &Triplets, rhs: &mut [f64]) -> Result<(), Error>;
}

/// Chooses the dense kernel for small systems and the sparse kernel for
/// large ones; reuses workspace between calls.
#[derive(Debug)]
pub struct AutoSolver {
    dense: dense::DenseSolver,
    sparse: sparse::SparseSolver,
    last_quality: SolveQuality,
    cutoff: usize,
}

impl Default for AutoSolver {
    fn default() -> Self {
        Self::with_cutoff(DENSE_CUTOFF)
    }
}

impl AutoSolver {
    /// Creates a solver with empty workspaces and the measured
    /// [`DENSE_CUTOFF`] kernel-selection threshold.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver that switches kernels at `cutoff` unknowns
    /// instead of [`DENSE_CUTOFF`]. The experiment pipelines pass
    /// [`EXPERIMENT_DENSE_CUTOFF`] to keep their baselines byte-stable.
    pub fn with_cutoff(cutoff: usize) -> Self {
        Self {
            dense: dense::DenseSolver::default(),
            sparse: sparse::SparseSolver::default(),
            last_quality: SolveQuality::default(),
            cutoff,
        }
    }

    /// The kernel-selection threshold this solver was built with.
    pub fn cutoff(&self) -> usize {
        self.cutoff
    }

    /// Certification record of the most recent successful solve
    /// (see [`verify::SolveQuality`]).
    pub fn last_quality(&self) -> SolveQuality {
        self.last_quality
    }

    /// Merged kernel counters from whichever kernels this solver has
    /// used so far (dense at or below the cutoff, sparse above).
    /// Telemetry snapshots this before and after an analysis and
    /// reports the delta.
    pub fn stats(&self) -> LuStats {
        let mut stats = self.dense.stats();
        stats.absorb(&self.sparse.lu_stats());
        stats
    }
}

impl Solver for AutoSolver {
    fn solve_in_place(&mut self, triplets: &Triplets, rhs: &mut [f64]) -> Result<(), Error> {
        if triplets.dim() <= self.cutoff {
            self.dense.solve_in_place(triplets, rhs)?;
            self.last_quality = self.dense.last_quality();
        } else {
            self.sparse.solve_in_place(triplets, rhs)?;
            self.last_quality = self.sparse.last_quality();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian_triplets(n: usize) -> Triplets {
        let mut t = Triplets::new(n);
        for i in 0..n {
            t.add(i, i, 2.1);
            if i + 1 < n {
                t.add(i, i + 1, -1.0);
                t.add(i + 1, i, -1.0);
            }
        }
        t
    }

    #[test]
    fn auto_solver_matches_on_both_sides_of_cutoff() {
        for n in [DENSE_CUTOFF - 1, DENSE_CUTOFF + 5] {
            let t = laplacian_triplets(n);
            let mut rhs: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
            let expected = {
                let mut d = dense::DenseSolver::default();
                let mut r = rhs.clone();
                d.solve_in_place(&t, &mut r).unwrap();
                r
            };
            let mut auto = AutoSolver::new();
            auto.solve_in_place(&t, &mut rhs).unwrap();
            for (a, b) in rhs.iter().zip(&expected) {
                assert!((a - b).abs() < 1e-10, "{a} vs {b}");
            }
        }
    }
}
