//! Bordered-block-diagonal (BBD) partitioned solver.
//!
//! CML circuits are chains of channel-connected stages hanging off a few
//! shared rails — the paper's own healing result says stage-to-stage
//! coupling dies out within ~3 stages. Structurally that is a bordered
//! block-diagonal matrix: reorder the unknowns as
//!
//! ```text
//! ⎡ D₁        E₁ ⎤   D_i = per-stage interior (sparse, tiny)
//! ⎢    D₂     E₂ ⎥   E_i/F_i = stage ↔ rail coupling
//! ⎢       ⋱   ⋮  ⎥   C   = rail-to-rail block (the border)
//! ⎣ F₁ F₂  ⋯  C  ⎦
//! ```
//!
//! and solve through the border Schur complement
//! `S = C − Σᵢ Fᵢ Dᵢ⁻¹ Eᵢ`: factor each `Dᵢ`, dense-factor the small `S`,
//! then every solve is one triangular solve per stage plus one dense
//! border solve. Because generator-shaped circuits repeat the *same*
//! stage thousands of times, blocks are deduplicated by (local pattern,
//! value bits): each distinct block is factored **once** per Newton
//! iteration and its `W = D⁻¹E` / `F·W` products shared by every
//! instance.
//!
//! The partition is detected from the MNA pattern alone (high-degree
//! rail nodes become the border; oversized interior components are
//! chunked with cut nodes promoted to the border). The path is
//! opportunistic: any failure — a singular interior block, a partition
//! the values disagree with — surfaces as an error and
//! [`SparseSolver`](super::sparse::SparseSolver) falls back to the
//! certified LU path. The PR-4 residual certifier runs on every BBD
//! solve, so a numerically unlucky partition can never ship a wrong
//! answer silently.

// Index-based loops are kept in these numeric kernels: the indices are
// the mathematical objects (CSC positions, local rows, pool slots).
#![allow(clippy::needless_range_loop)]

use super::dense::DenseMatrix;
use super::order::symmetric_adjacency;
use super::sparse::{SparseLu, SparseMatrix};
use crate::error::Error;
use std::collections::HashMap;

/// Target interior-block size when chunking an oversized component.
const TARGET_BLOCK: usize = 128;

/// Border-size cap: the Schur complement is dense, so a partition whose
/// border grows past this is worse than plain sparse LU.
const MAX_BORDER: usize = 512;

/// Smallest system worth partitioning at all.
const MIN_DIM: usize = 8;

/// One interior block: its nodes, the border nodes it touches, and the
/// gather programs that lift the global CSC values into the block-local
/// `D` (sparse), `E` (dense `|B|×|Γ|`) and `F` (dense `|Γ|×|B|`).
#[derive(Debug, Clone)]
struct Block {
    /// Original unknown indices, in block-local order.
    nodes: Vec<u32>,
    /// Border-local indices this block couples to, in canonical
    /// (first-appearance) order; `Γ` below is `touched.len()`.
    touched: Vec<u32>,
    /// Structural equivalence class (blocks in one class share every
    /// local pattern; value-identical members of a class share factors).
    class: usize,
    /// Local CSC pattern of `D` (`rows` parallel to the gather order).
    d_col_ptr: Vec<u32>,
    d_rows: Vec<u32>,
    /// `(global CSC slot, local D slot)` per interior nonzero.
    d_gather: Vec<(u32, u32)>,
    /// `(global CSC slot, offset j·|B|+r)` per `E` nonzero (col-major).
    e_gather: Vec<(u32, u32)>,
    /// `(global CSC slot, offset c·|Γ|+i)` per `F` nonzero (col-major).
    f_gather: Vec<(u32, u32)>,
}

/// Factorization slot shared by all value-identical instances of one
/// structural class: the block LU (with its own refactor fast path),
/// the gathered `E`/`F` values, and the `W = D⁻¹E`, `FW = F·W` products.
#[derive(Debug, Default)]
struct PoolSlot {
    matrix: Option<SparseMatrix>,
    lu: SparseLu,
    e: Vec<f64>,
    f: Vec<f64>,
    w: Vec<f64>,
    fw: Vec<f64>,
}

/// Partition + solver state; built once per sparsity pattern by
/// [`detect`](BbdSolver::detect), refreshed numerically by
/// [`factor`](BbdSolver::factor) every Newton iteration.
#[derive(Debug)]
pub struct BbdSolver {
    n: usize,
    /// Border nodes (original indices), ascending.
    border: Vec<usize>,
    blocks: Vec<Block>,
    /// `(global CSC slot, border row, border col)` of the `C` block.
    c_gather: Vec<(u32, u32, u32)>,
    /// Number of structural classes.
    classes: usize,
    /// Factor pool, indexed `[class][slot]`; slots persist across
    /// refactors so the per-block LUs keep their symbolic caches.
    pool: Vec<Vec<PoolSlot>>,
    /// `(class, slot)` assigned to each block by the last `factor`.
    group_of_block: Vec<(usize, usize)>,
    /// Live groups (pool slots in use) after the last `factor`.
    groups_last: usize,
    schur: DenseMatrix,
    schur_perm: Vec<usize>,
    factored: bool,
}

/// Shape summary of an active partition, for stats and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BbdStats {
    /// Interior blocks.
    pub blocks: usize,
    /// Border unknowns (dense Schur dimension).
    pub border: usize,
    /// Structural block classes.
    pub classes: usize,
    /// Distinct `(class, values)` groups factored by the last `factor`
    /// call (`0` before the first one).
    pub groups: usize,
}

impl BbdSolver {
    /// Detects a bordered-block-diagonal partition in the pattern of `a`.
    ///
    /// Returns `None` when no profitable partition exists (too small, a
    /// border that would dominate the matrix, or fewer than two interior
    /// blocks) — the caller should stay on the plain LU path.
    pub fn detect(a: &SparseMatrix) -> Option<BbdSolver> {
        let n = a.dim();
        if n < MIN_DIM {
            return None;
        }
        let adj = symmetric_adjacency(n, a.col_ptr(), a.rows());
        let degree_sum: usize = adj.iter().map(Vec::len).sum();
        let avg = degree_sum.div_ceil(n.max(1));
        let hub_floor = (4 * avg).max(8);
        let mut is_border: Vec<bool> = adj.iter().map(|l| l.len() >= hub_floor).collect();

        // Connected components over the interior, in BFS order.
        let mut comp = vec![usize::MAX; n];
        let mut comp_nodes: Vec<Vec<u32>> = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        for start in 0..n {
            if is_border[start] || comp[start] != usize::MAX {
                continue;
            }
            let id = comp_nodes.len();
            let mut members = Vec::new();
            comp[start] = id;
            queue.push_back(start);
            while let Some(v) = queue.pop_front() {
                members.push(v as u32);
                for &u in &adj[v] {
                    let u = u as usize;
                    if !is_border[u] && comp[u] == usize::MAX {
                        comp[u] = id;
                        queue.push_back(u);
                    }
                }
            }
            comp_nodes.push(members);
        }

        // Chunk oversized components along their BFS order; any node with
        // a neighbor in an *earlier* chunk is promoted to the border, so
        // no interior edge ever crosses a chunk boundary.
        let mut chunk = vec![usize::MAX; n];
        let mut next_chunk = 0usize;
        let mut chunk_members: Vec<Vec<u32>> = Vec::new();
        for members in &comp_nodes {
            let pieces = members.len().div_ceil(TARGET_BLOCK).max(1);
            let per = members.len().div_ceil(pieces);
            for piece in members.chunks(per) {
                for &v in piece {
                    chunk[v as usize] = next_chunk;
                }
                chunk_members.push(piece.to_vec());
                next_chunk += 1;
            }
        }
        for v in 0..n {
            if is_border[v] {
                continue;
            }
            let cv = chunk[v];
            if adj[v]
                .iter()
                .any(|&u| !is_border[u as usize] && chunk[u as usize] < cv)
            {
                is_border[v] = true;
            }
        }
        let blocks_nodes: Vec<Vec<u32>> = chunk_members
            .into_iter()
            .map(|m| {
                m.into_iter()
                    .filter(|&v| !is_border[v as usize])
                    .collect::<Vec<u32>>()
            })
            .filter(|m| !m.is_empty())
            .collect();
        let border: Vec<usize> = (0..n).filter(|&v| is_border[v]).collect();
        if blocks_nodes.len() < 2 || border.len() > MAX_BORDER || border.len() * 4 > n {
            return None;
        }

        Self::build(a, blocks_nodes, border)
    }

    /// Builds the gather programs and structural classes for a partition.
    fn build(a: &SparseMatrix, blocks_nodes: Vec<Vec<u32>>, border: Vec<usize>) -> Option<Self> {
        let n = a.dim();
        let mut border_local = vec![u32::MAX; n];
        for (i, &v) in border.iter().enumerate() {
            border_local[v] = i as u32;
        }
        let mut block_of = vec![u32::MAX; n];
        let mut local_of = vec![u32::MAX; n];
        for (b, nodes) in blocks_nodes.iter().enumerate() {
            for (l, &v) in nodes.iter().enumerate() {
                block_of[v as usize] = b as u32;
                local_of[v as usize] = l as u32;
            }
        }

        let col_ptr = a.col_ptr();
        let rows = a.rows();
        let mut blocks: Vec<Block> = Vec::with_capacity(blocks_nodes.len());
        for nodes in &blocks_nodes {
            let bsize = nodes.len();
            let mut block = Block {
                nodes: nodes.clone(),
                touched: Vec::new(),
                class: 0,
                d_col_ptr: Vec::with_capacity(bsize + 1),
                d_rows: Vec::new(),
                d_gather: Vec::new(),
                e_gather: Vec::new(),
                f_gather: Vec::new(),
            };
            let mut touch_index: HashMap<u32, u32> = HashMap::new();
            // F offsets need |Γ|, which is only known after the scan:
            // collect (slot, touched i, local c) raw and convert below.
            let mut f_raw: Vec<(u32, u32, u32)> = Vec::new();
            block.d_col_ptr.push(0);
            for (lc, &gc) in nodes.iter().enumerate() {
                let gc = gc as usize;
                for p in col_ptr[gc]..col_ptr[gc + 1] {
                    let r = rows[p];
                    if block_of[r] == block_of[gc] {
                        let slot = block.d_rows.len() as u32;
                        block.d_rows.push(local_of[r]);
                        block.d_gather.push((p as u32, slot));
                    } else if border_local[r] != u32::MAX {
                        let next = touch_index.len() as u32;
                        let i = *touch_index.entry(border_local[r]).or_insert_with(|| {
                            block.touched.push(border_local[r]);
                            next
                        });
                        f_raw.push((p as u32, i, lc as u32));
                    } else {
                        // An interior entry crossing blocks contradicts
                        // the partition invariant — bail out.
                        return None;
                    }
                }
                block.d_col_ptr.push(block.d_rows.len() as u32);
            }
            block.f_raw_placeholder(f_raw);
            blocks.push(block);
        }

        // Border columns: split entries into C (border row) and per-block
        // E contributions.
        let mut c_gather: Vec<(u32, u32, u32)> = Vec::new();
        for (bc, &gc) in border.iter().enumerate() {
            for p in col_ptr[gc]..col_ptr[gc + 1] {
                let r = rows[p];
                if border_local[r] != u32::MAX {
                    c_gather.push((p as u32, border_local[r], bc as u32));
                } else {
                    let b = block_of[r] as usize;
                    let block = &mut blocks[b];
                    let bl = bc as u32;
                    let j = match block.touched.iter().position(|&t| t == bl) {
                        Some(j) => j as u32,
                        None => {
                            block.touched.push(bl);
                            (block.touched.len() - 1) as u32
                        }
                    };
                    let bsz = block.nodes.len() as u32;
                    block.e_gather.push((p as u32, j * bsz + local_of[r]));
                }
            }
        }
        // Now |Γ| is final: convert raw F triples into dense offsets.
        for block in &mut blocks {
            let gamma = block.touched.len() as u32;
            for (_, off) in block.f_gather.iter_mut() {
                let i = *off >> 16;
                let lc = *off & 0xFFFF;
                *off = lc * gamma + i;
            }
            debug_assert!(gamma <= MAX_BORDER as u32);
        }

        // Structural classes: blocks with byte-equal local shapes can
        // share factors when their values also match.
        let mut class_ids: HashMap<Vec<u32>, usize> = HashMap::new();
        for block in &mut blocks {
            let mut sig: Vec<u32> = Vec::with_capacity(
                4 + block.d_col_ptr.len()
                    + block.d_rows.len()
                    + block.e_gather.len()
                    + block.f_gather.len(),
            );
            sig.push(block.nodes.len() as u32);
            sig.push(block.touched.len() as u32);
            sig.extend_from_slice(&block.d_col_ptr);
            sig.extend_from_slice(&block.d_rows);
            sig.push(u32::MAX);
            sig.extend(block.e_gather.iter().map(|&(_, off)| off));
            sig.push(u32::MAX);
            sig.extend(block.f_gather.iter().map(|&(_, off)| off));
            let next = class_ids.len();
            block.class = *class_ids.entry(sig).or_insert(next);
        }
        let classes = class_ids.len();
        let nblocks = blocks.len();

        Some(BbdSolver {
            n,
            border,
            blocks,
            c_gather,
            classes,
            pool: (0..classes).map(|_| Vec::new()).collect(),
            group_of_block: vec![(0, 0); nblocks],
            groups_last: 0,
            schur: DenseMatrix::zeros(0),
            schur_perm: Vec::new(),
            factored: false,
        })
    }

    /// Shape summary of the partition.
    pub fn stats(&self) -> BbdStats {
        BbdStats {
            blocks: self.blocks.len(),
            border: self.border.len(),
            classes: self.classes,
            groups: self.groups_last,
        }
    }

    /// Numeric factorization against the values of `a` (whose pattern
    /// must be the one [`detect`](Self::detect) was given): gathers each
    /// block, groups value-identical instances, factors one LU per group,
    /// forms the dense border Schur complement and factors it.
    ///
    /// # Errors
    ///
    /// [`Error::SingularMatrix`] when an interior block or the Schur
    /// complement is singular for the current values — the caller should
    /// fall back to the monolithic LU path.
    pub fn factor(&mut self, a: &SparseMatrix) -> Result<(), Error> {
        debug_assert_eq!(a.dim(), self.n, "pattern changed under the partition");
        self.factored = false;
        let vals = a.vals();
        let mut groups: HashMap<(usize, Vec<u64>), usize> = HashMap::new();
        let mut used: Vec<usize> = vec![0; self.classes];
        let mut live: Vec<(usize, usize)> = Vec::new();

        for (bi, block) in self.blocks.iter().enumerate() {
            let mut bits: Vec<u64> = Vec::with_capacity(
                block.d_gather.len() + block.e_gather.len() + block.f_gather.len(),
            );
            bits.extend(
                block
                    .d_gather
                    .iter()
                    .map(|&(g, _)| vals[g as usize].to_bits()),
            );
            bits.extend(
                block
                    .e_gather
                    .iter()
                    .map(|&(g, _)| vals[g as usize].to_bits()),
            );
            bits.extend(
                block
                    .f_gather
                    .iter()
                    .map(|&(g, _)| vals[g as usize].to_bits()),
            );
            let key = (block.class, bits);
            if let Some(&gidx) = groups.get(&key) {
                self.group_of_block[bi] = live[gidx];
                continue;
            }
            // New group: claim the next pool slot for this class and
            // refresh its numeric state.
            let slot_idx = used[block.class];
            used[block.class] += 1;
            let class_pool = &mut self.pool[block.class];
            if class_pool.len() <= slot_idx {
                class_pool.push(PoolSlot::default());
            }
            let slot = &mut class_pool[slot_idx];
            let bsize = block.nodes.len();
            let gamma = block.touched.len();
            // D values: local pattern is fixed, so refresh in place when
            // the cached local matrix exists (keeps the LU refactor fast
            // path), build it once otherwise.
            match &mut slot.matrix {
                Some(m) => {
                    let mv = m.vals_mut();
                    for &(g, l) in &block.d_gather {
                        mv[l as usize] = vals[g as usize];
                    }
                }
                None => {
                    let col_ptr: Vec<usize> = block.d_col_ptr.iter().map(|&v| v as usize).collect();
                    let rows: Vec<usize> = block.d_rows.iter().map(|&v| v as usize).collect();
                    let mut dvals = vec![0.0; block.d_rows.len()];
                    for &(g, l) in &block.d_gather {
                        dvals[l as usize] = vals[g as usize];
                    }
                    slot.matrix = Some(SparseMatrix::from_raw_csc(bsize, col_ptr, rows, dvals));
                }
            }
            let m = slot.matrix.as_ref().expect("cached above");
            slot.lu.refactor(m)?;
            // E, W = D⁻¹E, F, FW = F·W.
            slot.e.clear();
            slot.e.resize(bsize * gamma, 0.0);
            for &(g, off) in &block.e_gather {
                slot.e[off as usize] = vals[g as usize];
            }
            slot.f.clear();
            slot.f.resize(gamma * bsize, 0.0);
            for &(g, off) in &block.f_gather {
                slot.f[off as usize] = vals[g as usize];
            }
            slot.w.clear();
            slot.w.extend_from_slice(&slot.e);
            for j in 0..gamma {
                slot.lu.solve(&mut slot.w[j * bsize..(j + 1) * bsize])?;
            }
            slot.fw.clear();
            slot.fw.resize(gamma * gamma, 0.0);
            for j in 0..gamma {
                for c in 0..bsize {
                    let wcj = slot.w[j * bsize + c];
                    if wcj == 0.0 {
                        continue;
                    }
                    for i in 0..gamma {
                        slot.fw[j * gamma + i] += slot.f[c * gamma + i] * wcj;
                    }
                }
            }
            let gidx = live.len();
            live.push((block.class, slot_idx));
            groups.insert(key, gidx);
            self.group_of_block[bi] = (block.class, slot_idx);
        }
        self.groups_last = live.len();

        // Border Schur complement S = C − Σ Fᵢ Dᵢ⁻¹ Eᵢ, dense.
        let bsize = self.border.len();
        self.schur = DenseMatrix::zeros(bsize);
        for &(g, br, bc) in &self.c_gather {
            self.schur.add(br as usize, bc as usize, vals[g as usize]);
        }
        for (bi, block) in self.blocks.iter().enumerate() {
            let (class, slot_idx) = self.group_of_block[bi];
            let slot = &self.pool[class][slot_idx];
            let gamma = block.touched.len();
            for j in 0..gamma {
                let sc = block.touched[j] as usize;
                for i in 0..gamma {
                    let sr = block.touched[i] as usize;
                    self.schur.add(sr, sc, -slot.fw[j * gamma + i]);
                }
            }
        }
        self.schur_perm = self.schur.lu_factor()?;
        self.factored = true;
        Ok(())
    }

    /// Solves `A x = b` with the factors from the last
    /// [`factor`](Self::factor); `rhs` holds `b` on entry, `x` on exit.
    ///
    /// # Errors
    ///
    /// [`Error::SolverContract`] without a current factorization or on a
    /// dimension mismatch; errors from block solves propagate.
    pub fn solve(&self, rhs: &mut [f64]) -> Result<(), Error> {
        if !self.factored {
            return Err(Error::SolverContract {
                reason: "BBD solve called without a factorization".to_string(),
            });
        }
        if rhs.len() != self.n {
            return Err(Error::SolverContract {
                reason: format!(
                    "rhs has {} entries for a {}-unknown system",
                    rhs.len(),
                    self.n
                ),
            });
        }
        let bsize = self.border.len();
        // g = b_Γ − Σ Fᵢ yᵢ with yᵢ = Dᵢ⁻¹ bᵢ.
        let mut xg: Vec<f64> = self.border.iter().map(|&v| rhs[v]).collect();
        let mut ys: Vec<Vec<f64>> = Vec::with_capacity(self.blocks.len());
        for (bi, block) in self.blocks.iter().enumerate() {
            let (class, slot_idx) = self.group_of_block[bi];
            let slot = &self.pool[class][slot_idx];
            let mut y: Vec<f64> = block.nodes.iter().map(|&v| rhs[v as usize]).collect();
            slot.lu.solve(&mut y)?;
            let gamma = block.touched.len();
            for (c, &yc) in y.iter().enumerate() {
                if yc == 0.0 {
                    continue;
                }
                for i in 0..gamma {
                    xg[block.touched[i] as usize] -= slot.f[c * gamma + i] * yc;
                }
            }
            ys.push(y);
        }
        // x_Γ = S⁻¹ g.
        if bsize > 0 {
            self.schur.lu_solve(&self.schur_perm, &mut xg);
        }
        // xᵢ = yᵢ − Wᵢ x_Γ|touched, using the cached W = D⁻¹E.
        for (bi, block) in self.blocks.iter().enumerate() {
            let (class, slot_idx) = self.group_of_block[bi];
            let slot = &self.pool[class][slot_idx];
            let y = &mut ys[bi];
            let nb = block.nodes.len();
            for (j, &t) in block.touched.iter().enumerate() {
                let xj = xg[t as usize];
                if xj == 0.0 {
                    continue;
                }
                for r in 0..nb {
                    y[r] -= slot.w[j * nb + r] * xj;
                }
            }
            for (l, &v) in block.nodes.iter().enumerate() {
                rhs[v as usize] = y[l];
            }
        }
        for (i, &v) in self.border.iter().enumerate() {
            rhs[v] = xg[i];
        }
        Ok(())
    }

    /// Chaos hook: corrupts the factorization (a Schur pivot when a
    /// border exists, the first block LU otherwise) so solves complete
    /// but only the residual certifier can tell the answers are wrong.
    pub(crate) fn perturb_pivot(&mut self) {
        let b = self.border.len();
        if b > 0 {
            let k = b / 2;
            let u = self.schur.get(k, k);
            self.schur.add(k, k, u * 999.0);
        } else if let Some(slot) = self.pool.iter_mut().flatten().next() {
            slot.lu.perturb_pivot();
        }
    }
}

impl Block {
    /// Stores the raw `(slot, touched i, local c)` F triples packed as
    /// `(slot, i << 16 | c)`; [`BbdSolver::build`] converts them to dense
    /// offsets once `|Γ|` is final.
    fn f_raw_placeholder(&mut self, raw: Vec<(u32, u32, u32)>) {
        self.f_gather = raw
            .into_iter()
            .map(|(slot, i, lc)| {
                debug_assert!(i < 1 << 16 && lc < 1 << 16);
                (slot, (i << 16) | lc)
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::{SparseLu, Triplets};

    /// `stages` identical 3-node stages, each coupled to a shared rail
    /// node 0 — the CML shape: repeated channel-connected blocks hanging
    /// off one border hub.
    fn stage_chain(stages: usize) -> Triplets {
        let n = 1 + 3 * stages;
        let mut t = Triplets::new(n);
        t.add(0, 0, 1.0);
        for s in 0..stages {
            let base = 1 + 3 * s;
            for k in 0..3 {
                t.add(base + k, base + k, 4.0 + k as f64);
                t.add(0, base + k, -0.25);
                t.add(base + k, 0, -0.25);
                t.add(0, 0, 0.25);
            }
            t.add(base, base + 1, -1.0);
            t.add(base + 1, base, -1.0);
            t.add(base + 1, base + 2, -0.5);
            t.add(base + 2, base + 1, -0.5);
        }
        t
    }

    fn reference_solve(t: &Triplets, b: &[f64]) -> Vec<f64> {
        let a = SparseMatrix::from_triplets(t);
        let mut lu = SparseLu::new();
        lu.factor(&a).unwrap();
        let mut x = b.to_vec();
        lu.solve(&mut x).unwrap();
        x
    }

    #[test]
    fn detects_and_solves_stage_chain() {
        let t = stage_chain(12);
        let a = SparseMatrix::from_triplets(&t);
        let mut bbd = BbdSolver::detect(&a).expect("stage chain partitions");
        let stats = bbd.stats();
        assert!(stats.blocks >= 2, "{stats:?}");
        assert!(stats.border >= 1, "{stats:?}");
        bbd.factor(&a).unwrap();
        // Identical stages must collapse into few factor groups.
        let stats = bbd.stats();
        assert!(
            stats.groups < stats.blocks,
            "no dedup: {} groups for {} blocks",
            stats.groups,
            stats.blocks
        );
        let b: Vec<f64> = (0..a.dim()).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let mut x = b.clone();
        bbd.solve(&mut x).unwrap();
        let x_ref = reference_solve(&t, &b);
        for (xs, xr) in x.iter().zip(&x_ref) {
            assert!((xs - xr).abs() < 1e-9 * xr.abs().max(1.0), "{xs} vs {xr}");
        }
    }

    #[test]
    fn refactor_tracks_new_values() {
        let t = stage_chain(8);
        let a = SparseMatrix::from_triplets(&t);
        let mut bbd = BbdSolver::detect(&a).expect("partition");
        bbd.factor(&a).unwrap();
        // Second circuit: same pattern, different values (and now two
        // distinct stage flavors, so grouping must split).
        let mut t2 = stage_chain(8);
        t2.add(1, 1, 0.5);
        let a2 = SparseMatrix::from_triplets(&t2);
        bbd.factor(&a2).unwrap();
        let b: Vec<f64> = (0..a2.dim()).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut x = b.clone();
        bbd.solve(&mut x).unwrap();
        let x_ref = reference_solve(&t2, &b);
        for (xs, xr) in x.iter().zip(&x_ref) {
            assert!((xs - xr).abs() < 1e-9 * xr.abs().max(1.0), "{xs} vs {xr}");
        }
    }

    #[test]
    fn rejects_small_and_dense_patterns() {
        let mut t = Triplets::new(4);
        for i in 0..4 {
            t.add(i, i, 1.0);
        }
        assert!(BbdSolver::detect(&SparseMatrix::from_triplets(&t)).is_none());

        // Fully dense: everything is a hub, no interior blocks remain.
        let n = 16;
        let mut t = Triplets::new(n);
        for r in 0..n {
            for c in 0..n {
                t.add(r, c, if r == c { 4.0 } else { -0.1 });
            }
        }
        assert!(BbdSolver::detect(&SparseMatrix::from_triplets(&t)).is_none());
    }

    #[test]
    fn solve_without_factor_is_a_contract_error() {
        let t = stage_chain(8);
        let a = SparseMatrix::from_triplets(&t);
        let bbd = BbdSolver::detect(&a).expect("partition");
        let mut x = vec![1.0; a.dim()];
        assert!(matches!(
            bbd.solve(&mut x),
            Err(Error::SolverContract { .. })
        ));
    }

    #[test]
    fn singular_block_surfaces_as_error() {
        let mut t = stage_chain(8);
        // Zero out one stage's interior row so its D block is singular
        // (stamp an exact cancellation of the whole row).
        let a0 = SparseMatrix::from_triplets(&t);
        let mut bbd = BbdSolver::detect(&a0).expect("partition");
        t.add(1, 1, -4.0);
        t.add(1, 2, 1.0);
        t.add(1, 0, 0.25);
        let a = SparseMatrix::from_triplets(&t);
        // Same pattern, values make block 0 singular → factor must fail,
        // never silently mis-solve.
        match bbd.factor(&a) {
            Err(_) => {}
            Ok(()) => {
                // If the block LU still found pivots, the certified
                // solve upstream is the net; here just require solve to
                // run without panicking.
                let mut x = vec![1.0; a.dim()];
                let _ = bbd.solve(&mut x);
            }
        }
    }
}
