//! Semiconductor device models.
//!
//! The paper's circuits need exactly two nonlinear devices: the junction
//! diode (used both as a discrete element and as the non-linear detector
//! load of §6.1) and the vertical bipolar transistor. The BJT model is an
//! Ebers–Moll *transport* formulation with the Early effect and
//! junction + diffusion charge storage — the subset of Gummel–Poon that the
//! paper's behaviour depends on (VBE ≈ 900 mV at operating current, current
//! steering, saturation clamping of excessive swings).

pub mod batch;
pub mod bjt;
pub mod diode;

pub use batch::BjtBatch;
pub use bjt::{BjtEval, BjtModel, Polarity};
pub use diode::{DiodeEval, DiodeModel};

/// Largest exponent argument before [`limexp`] switches to linear
/// continuation (`exp(40) ≈ 2.4e17` keeps products within `f64` range).
pub const LIMEXP_MAX: f64 = 40.0;

/// `exp` with linear continuation above [`LIMEXP_MAX`] so Newton iterations
/// cannot overflow while far from convergence.
///
/// The continuation keeps the function C¹-continuous: value and first
/// derivative match at the switch point.
#[inline]
pub fn limexp(x: f64) -> f64 {
    if x < LIMEXP_MAX {
        x.exp()
    } else {
        let e = LIMEXP_MAX.exp();
        e * (1.0 + (x - LIMEXP_MAX))
    }
}

/// Derivative of [`limexp`].
#[inline]
pub fn limexp_deriv(x: f64) -> f64 {
    if x < LIMEXP_MAX {
        x.exp()
    } else {
        LIMEXP_MAX.exp()
    }
}

/// SPICE-style junction voltage limiting (`pnjlim`).
///
/// Limits the Newton update of a junction voltage so the exponential does
/// not overshoot: above the critical voltage the step is replaced by a
/// logarithmic update. `vnew` is the raw Newton proposal, `vold` the value
/// used in the previous iteration, `vt` the thermal voltage and `vcrit` the
/// critical voltage of the junction.
pub fn pnjlim(vnew: f64, vold: f64, vt: f64, vcrit: f64) -> f64 {
    if vnew > vcrit && (vnew - vold).abs() > 2.0 * vt {
        if vold > 0.0 {
            let arg = (vnew - vold) / vt;
            if arg > 0.0 {
                // `arg > 2` holds because |vnew - vold| > 2·vt.
                vold + vt * (2.0 + (arg - 2.0).max(1e-30).ln())
            } else {
                vold - vt * (2.0 + (2.0 - arg).ln())
            }
        } else {
            vt * (vnew / vt).ln()
        }
    } else {
        vnew
    }
}

/// Critical voltage for [`pnjlim`]: the junction voltage at which the
/// small-signal junction resistance equals `√2·vt/Is`.
pub fn vcrit(is: f64, vt: f64) -> f64 {
    vt * (vt / (std::f64::consts::SQRT_2 * is)).ln()
}

/// Forward-bias fraction of `Vj` beyond which the depletion capacitance is
/// linearized (SPICE `FC`).
pub const DEPLETION_FC: f64 = 0.5;

/// Graded-junction depletion charge and capacitance:
/// `C(v) = Cj0 / (1 − v/Vj)^m` for `v < FC·Vj`, linearized beyond to avoid
/// the singularity at `v = Vj` (standard SPICE treatment). With `m = 0`
/// this degenerates to a constant capacitor `q = Cj0·v`.
///
/// Returns `(charge, capacitance)`.
pub fn depletion_charge(v: f64, cj0: f64, vj: f64, m: f64) -> (f64, f64) {
    if cj0 == 0.0 {
        return (0.0, 0.0);
    }
    if m == 0.0 {
        return (cj0 * v, cj0);
    }
    let fc_vj = DEPLETION_FC * vj;
    if v < fc_vj {
        let x = 1.0 - v / vj;
        let c = cj0 * x.powf(-m);
        let q = cj0 * vj / (1.0 - m) * (1.0 - x.powf(1.0 - m));
        (q, c)
    } else {
        // Linear continuation: value and slope match at FC·Vj.
        let xf = 1.0 - DEPLETION_FC;
        let q_f = cj0 * vj / (1.0 - m) * (1.0 - xf.powf(1.0 - m));
        let c_f = cj0 * xf.powf(-m);
        let dc = cj0 * m * xf.powf(-m - 1.0) / vj; // dC/dv at FC·Vj
        let dv = v - fc_vj;
        let c = c_f + dc * dv;
        let q = q_f + c_f * dv + 0.5 * dc * dv * dv;
        (q, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VT_300K;

    #[test]
    fn limexp_matches_exp_below_cutoff() {
        for x in [-5.0, 0.0, 10.0, 39.9] {
            assert_eq!(limexp(x), x.exp());
            assert_eq!(limexp_deriv(x), x.exp());
        }
    }

    #[test]
    fn limexp_is_linear_and_continuous_above_cutoff() {
        let e = LIMEXP_MAX.exp();
        assert!((limexp(LIMEXP_MAX) - e).abs() < 1e-3 * e);
        assert!((limexp(LIMEXP_MAX + 1.0) - 2.0 * e).abs() < 1e-3 * e);
        // Monotone increasing.
        assert!(limexp(60.0) > limexp(50.0));
        // Finite where exp would overflow into huge values.
        assert!(limexp(800.0).is_finite());
    }

    #[test]
    fn pnjlim_passes_small_steps() {
        let vc = vcrit(1e-16, VT_300K);
        let v = pnjlim(0.701, 0.70, VT_300K, vc);
        assert_eq!(v, 0.701);
    }

    #[test]
    fn pnjlim_limits_big_forward_steps() {
        let vc = vcrit(1e-16, VT_300K);
        let v = pnjlim(5.0, 0.7, VT_300K, vc);
        assert!(v < 1.2, "limited to {v}");
        assert!(v > 0.7);
    }

    #[test]
    fn pnjlim_from_reverse_limits_hard() {
        // Starting from reverse bias, a big forward proposal is pulled back
        // near the knee (SPICE uses vt·ln(vnew/vt) here).
        let vc = vcrit(1e-16, VT_300K);
        let v = pnjlim(3.0, -1.0, VT_300K, vc);
        assert!(v > 0.0 && v < 0.3, "limited to {v}");
    }

    #[test]
    fn vcrit_is_sane_for_typical_is() {
        let vc = vcrit(1e-16, VT_300K);
        assert!(vc > 0.7 && vc < 1.0, "vcrit = {vc}");
    }
}
