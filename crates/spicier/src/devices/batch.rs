//! Batched BJT evaluation over a struct-of-arrays layout.
//!
//! A generator-shaped circuit stamps thousands of identical BJTs per
//! Newton iteration, and [`BjtModel::eval`] is dominated by the two
//! `limexp` calls and their derivatives. Evaluating device-by-device
//! interleaves that transcendental work with stamping and pointer
//! chasing; evaluating all devices first over parallel arrays keeps the
//! hot loop branch-light and lets the compiler vectorize the shared
//! polynomial work.
//!
//! **Bit-identity contract**: every arithmetic expression in
//! [`BjtBatch::eval_all`] is copied operation-for-operation from
//! [`BjtModel::eval`], in the same order, on the same scalar types —
//! only the loop structure differs (a gather pass filling the `limexp`
//! arrays, then the main pass). IEEE-754 makes each lane's result
//! bitwise equal to the scalar path, which the property tests below
//! assert exhaustively; the MNA assembler relies on this to keep frozen
//! experiment baselines byte-stable.

use super::bjt::{BjtEval, BjtModel};
use super::{depletion_charge, limexp, limexp_deriv};
use crate::VT_300K;

/// Struct-of-arrays batch of BJT instances with their current bias.
///
/// Built once per circuit by the assembler (one lane per BJT element in
/// element order); each Newton iteration writes the limited junction
/// voltages with [`set_bias`](Self::set_bias), runs
/// [`eval_all`](Self::eval_all), and reads the results back with
/// [`eval_of`](Self::eval_of) while stamping.
#[derive(Debug, Default)]
pub struct BjtBatch {
    // Model parameters, one lane per instance.
    is: Vec<f64>,
    bf: Vec<f64>,
    br: Vec<f64>,
    vaf: Vec<f64>,
    cje: Vec<f64>,
    vje: Vec<f64>,
    mje: Vec<f64>,
    cjc: Vec<f64>,
    vjc: Vec<f64>,
    mjc: Vec<f64>,
    tf: Vec<f64>,
    tr: Vec<f64>,
    // Bias inputs (polarity-normalized, already junction-limited).
    vbe: Vec<f64>,
    vbc: Vec<f64>,
    // limexp scratch shared between the gather pass and the main pass.
    ebe: Vec<f64>,
    ebc: Vec<f64>,
    debe: Vec<f64>,
    debc: Vec<f64>,
    // Outputs, mirroring the BjtEval fields.
    ic: Vec<f64>,
    ib: Vec<f64>,
    dic_dvbe: Vec<f64>,
    dic_dvbc: Vec<f64>,
    dib_dvbe: Vec<f64>,
    dib_dvbc: Vec<f64>,
    qbe: Vec<f64>,
    cbe: Vec<f64>,
    qbc: Vec<f64>,
    cbc: Vec<f64>,
}

impl BjtBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instances in the batch.
    pub fn len(&self) -> usize {
        self.is.len()
    }

    /// Whether the batch has no instances.
    pub fn is_empty(&self) -> bool {
        self.is.is_empty()
    }

    /// Appends one instance's model parameters; returns its lane index.
    pub fn push_model(&mut self, model: &BjtModel) -> usize {
        let lane = self.is.len();
        self.is.push(model.is);
        self.bf.push(model.bf);
        self.br.push(model.br);
        self.vaf.push(model.vaf);
        self.cje.push(model.cje);
        self.vje.push(model.vje);
        self.mje.push(model.mje);
        self.cjc.push(model.cjc);
        self.vjc.push(model.vjc);
        self.mjc.push(model.mjc);
        self.tf.push(model.tf);
        self.tr.push(model.tr);
        for arr in [
            &mut self.vbe,
            &mut self.vbc,
            &mut self.ebe,
            &mut self.ebc,
            &mut self.debe,
            &mut self.debc,
            &mut self.ic,
            &mut self.ib,
            &mut self.dic_dvbe,
            &mut self.dic_dvbc,
            &mut self.dib_dvbe,
            &mut self.dib_dvbc,
            &mut self.qbe,
            &mut self.cbe,
            &mut self.qbc,
            &mut self.cbc,
        ] {
            arr.push(0.0);
        }
        lane
    }

    /// Sets the (polarity-normalized, limited) junction voltages of one
    /// lane for the next [`eval_all`](Self::eval_all).
    pub fn set_bias(&mut self, lane: usize, vbe: f64, vbc: f64) {
        self.vbe[lane] = vbe;
        self.vbc[lane] = vbc;
    }

    /// Evaluates every lane; expression-for-expression identical to
    /// [`BjtModel::eval`] per lane (see the module doc's bit-identity
    /// contract).
    pub fn eval_all(&mut self) {
        let vt = VT_300K;
        // Pass 1: the transcendental gather — the expensive part, over
        // contiguous arrays with no data-dependent control flow beyond
        // limexp's own branch.
        for lane in 0..self.vbe.len() {
            self.ebe[lane] = limexp(self.vbe[lane] / vt);
            self.ebc[lane] = limexp(self.vbc[lane] / vt);
            self.debe[lane] = limexp_deriv(self.vbe[lane] / vt) / vt;
            self.debc[lane] = limexp_deriv(self.vbc[lane] / vt) / vt;
        }
        // Pass 2: polynomial work per lane, same expressions and order
        // as the scalar eval.
        for lane in 0..self.vbe.len() {
            let vbe = self.vbe[lane];
            let vbc = self.vbc[lane];
            let ebe = self.ebe[lane];
            let ebc = self.ebc[lane];
            let debe = self.debe[lane];
            let debc = self.debc[lane];
            let is = self.is[lane];
            let vaf = self.vaf[lane];

            let (early, dearly_dvbc) = if vaf.is_finite() {
                let d = 1.0 - vbc / vaf;
                if d > 0.1 {
                    (d, -1.0 / vaf)
                } else {
                    (0.1, 0.0)
                }
            } else {
                (1.0, 0.0)
            };

            let ibe = is / self.bf[lane] * (ebe - 1.0);
            let gbe = (is / self.bf[lane] * debe).max(1.0e-14);
            let ibc = is / self.br[lane] * (ebc - 1.0);
            let gbc = (is / self.br[lane] * debc).max(1.0e-14);

            let ict = is * (ebe - ebc) * early;
            let dict_dvbe = is * debe * early;
            let dict_dvbc = -is * debc * early + is * (ebe - ebc) * dearly_dvbc;

            self.ic[lane] = ict - ibc;
            self.ib[lane] = ibe + ibc;
            self.dic_dvbe[lane] = dict_dvbe;
            self.dic_dvbc[lane] = dict_dvbc - gbc;
            self.dib_dvbe[lane] = gbe;
            self.dib_dvbc[lane] = gbc;

            let (qje, cje) = depletion_charge(vbe, self.cje[lane], self.vje[lane], self.mje[lane]);
            let (qjc, cjc) = depletion_charge(vbc, self.cjc[lane], self.vjc[lane], self.mjc[lane]);
            self.qbe[lane] = self.tf[lane] * is * (ebe - 1.0) + qje;
            self.cbe[lane] = self.tf[lane] * is * debe + cje;
            self.qbc[lane] = self.tr[lane] * is * (ebc - 1.0) + qjc;
            self.cbc[lane] = self.tr[lane] * is * debc + cjc;
        }
    }

    /// The evaluation of one lane, as the scalar-path struct.
    pub fn eval_of(&self, lane: usize) -> BjtEval {
        BjtEval {
            ic: self.ic[lane],
            ib: self.ib[lane],
            dic_dvbe: self.dic_dvbe[lane],
            dic_dvbc: self.dic_dvbc[lane],
            dib_dvbe: self.dib_dvbe[lane],
            dib_dvbc: self.dib_dvbc[lane],
            qbe: self.qbe[lane],
            cbe: self.cbe[lane],
            qbc: self.qbc[lane],
            cbc: self.cbc[lane],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_variants() -> Vec<BjtModel> {
        vec![
            BjtModel::fast_npn(),
            BjtModel::fast_pnp(),
            BjtModel::fast_npn().with_grading(0.75, 0.5),
            BjtModel::fast_npn().with_grading(0.7, 0.33),
            BjtModel::fast_npn().with_vaf(f64::INFINITY),
            BjtModel::fast_npn().with_is(1.0e-16).with_bf(50.0),
            BjtModel::fast_npn().with_tf(8.0e-12).with_tr(2.0e-9),
        ]
    }

    fn assert_bits_eq(batch: &BjtEval, scalar: &BjtEval, ctx: &str) {
        for (name, b, s) in [
            ("ic", batch.ic, scalar.ic),
            ("ib", batch.ib, scalar.ib),
            ("dic_dvbe", batch.dic_dvbe, scalar.dic_dvbe),
            ("dic_dvbc", batch.dic_dvbc, scalar.dic_dvbc),
            ("dib_dvbe", batch.dib_dvbe, scalar.dib_dvbe),
            ("dib_dvbc", batch.dib_dvbc, scalar.dib_dvbc),
            ("qbe", batch.qbe, scalar.qbe),
            ("cbe", batch.cbe, scalar.cbe),
            ("qbc", batch.qbc, scalar.qbc),
            ("cbc", batch.cbc, scalar.cbc),
        ] {
            assert_eq!(
                b.to_bits(),
                s.to_bits(),
                "{name} differs at {ctx}: batch {b:e} vs scalar {s:e}"
            );
        }
    }

    /// The batch path must be bitwise identical to the scalar path for
    /// every model variant across a wide bias grid — including deep
    /// cutoff, saturation, the Early-clamp boundary, and limexp's
    /// linearization region.
    #[test]
    fn batch_matches_scalar_bitwise() {
        let models = model_variants();
        let mut batch = BjtBatch::new();
        for m in &models {
            batch.push_model(m);
        }
        let grid: Vec<f64> = (-8..=10).map(|k| k as f64 * 0.1).collect();
        for &vbe in &grid {
            for &vbc in &grid {
                for lane in 0..models.len() {
                    batch.set_bias(lane, vbe, vbc);
                }
                batch.eval_all();
                for (lane, m) in models.iter().enumerate() {
                    let scalar = m.eval(vbe, vbc);
                    assert_bits_eq(
                        &batch.eval_of(lane),
                        &scalar,
                        &format!("lane {lane}, vbe {vbe}, vbc {vbc}"),
                    );
                }
            }
        }
    }

    /// Extreme biases exercise limexp's clamped branch and huge-magnitude
    /// arithmetic; identity must hold there too.
    #[test]
    fn batch_matches_scalar_at_extremes() {
        let m = BjtModel::fast_npn();
        let mut batch = BjtBatch::new();
        batch.push_model(&m);
        for (vbe, vbc) in [
            (5.0, 5.0),
            (-5.0, 40.0),
            (39.99, -39.99),
            (0.0, 0.0),
            (f64::MIN_POSITIVE, -f64::MIN_POSITIVE),
        ] {
            batch.set_bias(0, vbe, vbc);
            batch.eval_all();
            let scalar = m.eval(vbe, vbc);
            assert_bits_eq(&batch.eval_of(0), &scalar, &format!("vbe {vbe}, vbc {vbc}"));
        }
    }

    #[test]
    fn lanes_are_independent() {
        let m = BjtModel::fast_npn();
        let mut batch = BjtBatch::new();
        batch.push_model(&m);
        batch.push_model(&m);
        batch.set_bias(0, 0.9, -1.0);
        batch.set_bias(1, 0.2, 0.2);
        batch.eval_all();
        assert_bits_eq(&batch.eval_of(0), &m.eval(0.9, -1.0), "lane 0");
        assert_bits_eq(&batch.eval_of(1), &m.eval(0.2, 0.2), "lane 1");
        assert!(batch.eval_of(0).ic > batch.eval_of(1).ic);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut batch = BjtBatch::new();
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
        batch.eval_all();
    }
}
