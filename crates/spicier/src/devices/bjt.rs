//! Bipolar junction transistor: Ebers–Moll transport model with Early
//! effect and charge storage.
//!
//! The model computes, for junction voltages `vbe` and `vbc`:
//!
//! ```text
//! ibe = Is/βF · (exp(vbe/Vt) − 1)          base–emitter diode
//! ibc = Is/βR · (exp(vbc/Vt) − 1)          base–collector diode
//! ict = Is · (exp(vbe/Vt) − exp(vbc/Vt)) · (1 − vbc/VAF)   transport
//! ic  = ict − ibc,    ib = ibe + ibc,   ie = −(ic + ib)
//! ```
//!
//! Charge storage is `qbe = τF·Is·(exp(vbe/Vt)−1) + Cje·vbe` and
//! `qbc = τR·Is·(exp(vbc/Vt)−1) + Cjc·vbc` (constant junction
//! capacitances — depletion grading is not needed for the paper's
//! waveforms, see DESIGN.md). The reverse transit time `τR` models
//! saturation charge storage, which limits how far an excessive-swing
//! excursion develops within one half period at high frequency (the
//! mechanism behind the paper's Figure 5 frequency rolloff).
//!
//! PNP devices are handled by polarity reflection.

use super::{limexp, limexp_deriv, vcrit};
use crate::VT_300K;

/// NPN or PNP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Polarity {
    /// NPN (vertical NPNs dominate bipolar CML libraries).
    #[default]
    Npn,
    /// PNP.
    Pnp,
}

impl Polarity {
    /// +1 for NPN, −1 for PNP.
    pub fn sign(self) -> f64 {
        match self {
            Polarity::Npn => 1.0,
            Polarity::Pnp => -1.0,
        }
    }
}

/// Bipolar transistor model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BjtModel {
    /// Transport saturation current, amperes.
    pub is: f64,
    /// Forward current gain.
    pub bf: f64,
    /// Reverse current gain.
    pub br: f64,
    /// Forward Early voltage, volts (`f64::INFINITY` disables).
    pub vaf: f64,
    /// Base–emitter zero-bias junction capacitance, farads.
    pub cje: f64,
    /// Base–emitter junction potential, volts.
    pub vje: f64,
    /// Base–emitter grading coefficient (`0` = constant capacitance).
    pub mje: f64,
    /// Base–collector zero-bias junction capacitance, farads.
    pub cjc: f64,
    /// Base–collector junction potential, volts.
    pub vjc: f64,
    /// Base–collector grading coefficient (`0` = constant capacitance).
    pub mjc: f64,
    /// Forward transit time, seconds.
    pub tf: f64,
    /// Reverse transit time (saturation storage), seconds.
    pub tr: f64,
    /// Device polarity.
    pub polarity: Polarity,
}

impl BjtModel {
    /// A fast vertical NPN representative of late-1990s bipolar processes:
    /// `Is = 3e-19 A`, `βF = 100`, `βR = 2`, `VAF = 40 V`, `Cje = 20 fF`,
    /// `Cjc = 12 fF`, `τF = 4 ps`, `τR = 0.5 ns`.
    ///
    /// VBE ≈ 0.9 V at 0.4 mA and fT in the tens of GHz, consistent with the
    /// "VBE = 900 mV technology" and ~50 ps CML gate delays of the paper.
    pub fn fast_npn() -> Self {
        Self {
            is: 3.0e-19,
            bf: 100.0,
            br: 2.0,
            vaf: 40.0,
            cje: 20.0e-15,
            vje: 0.75,
            mje: 0.0,
            cjc: 12.0e-15,
            vjc: 0.75,
            mjc: 0.0,
            tf: 4.0e-12,
            tr: 0.5e-9,
            polarity: Polarity::Npn,
        }
    }

    /// Same parameters reflected into a PNP.
    pub fn fast_pnp() -> Self {
        Self {
            polarity: Polarity::Pnp,
            ..Self::fast_npn()
        }
    }

    /// Sets the saturation current.
    pub fn with_is(mut self, is: f64) -> Self {
        self.is = is;
        self
    }

    /// Sets the forward gain.
    pub fn with_bf(mut self, bf: f64) -> Self {
        self.bf = bf;
        self
    }

    /// Sets the junction capacitances.
    pub fn with_caps(mut self, cje: f64, cjc: f64) -> Self {
        self.cje = cje;
        self.cjc = cjc;
        self
    }

    /// Sets junction grading for both junctions (`mj = 0.33` graded,
    /// `0.5` abrupt). The default (`mj = 0`) keeps the capacitances
    /// bias-independent, which is the calibration DESIGN.md documents.
    pub fn with_grading(mut self, vj: f64, mj: f64) -> Self {
        self.vje = vj;
        self.mje = mj;
        self.vjc = vj;
        self.mjc = mj;
        self
    }

    /// Sets the forward transit time.
    pub fn with_tf(mut self, tf: f64) -> Self {
        self.tf = tf;
        self
    }

    /// Sets the reverse (saturation) transit time.
    pub fn with_tr(mut self, tr: f64) -> Self {
        self.tr = tr;
        self
    }

    /// Sets the Early voltage.
    pub fn with_vaf(mut self, vaf: f64) -> Self {
        self.vaf = vaf;
        self
    }

    /// Critical junction voltage for Newton limiting.
    pub fn vcrit(&self) -> f64 {
        vcrit(self.is, VT_300K)
    }

    /// Evaluates currents, conductances and charges at the *polarity
    /// normalized* junction voltages (`vbe`, `vbc`): callers pass
    /// `sign·(vb − ve)` and `sign·(vb − vc)` and interpret the returned
    /// currents with the same sign convention.
    pub fn eval(&self, vbe: f64, vbc: f64) -> BjtEval {
        let vt = VT_300K;
        let ebe = limexp(vbe / vt);
        let ebc = limexp(vbc / vt);
        let debe = limexp_deriv(vbe / vt) / vt;
        let debc = limexp_deriv(vbc / vt) / vt;

        // Early-effect factor: ict scales with (1 − vbc/VAF), so reverse
        // bias on the collector junction (negative vbc) raises ic. Clamped
        // away from zero so deep saturation cannot flip the transport sign.
        let (early, dearly_dvbc) = if self.vaf.is_finite() {
            let d = 1.0 - vbc / self.vaf;
            if d > 0.1 {
                (d, -1.0 / self.vaf)
            } else {
                (0.1, 0.0)
            }
        } else {
            (1.0, 0.0)
        };

        let ibe = self.is / self.bf * (ebe - 1.0);
        let gbe = (self.is / self.bf * debe).max(1.0e-14);
        let ibc = self.is / self.br * (ebc - 1.0);
        let gbc = (self.is / self.br * debc).max(1.0e-14);

        let ict = self.is * (ebe - ebc) * early;
        let dict_dvbe = self.is * debe * early;
        let dict_dvbc = -self.is * debc * early + self.is * (ebe - ebc) * dearly_dvbc;

        let ic = ict - ibc;
        let ib = ibe + ibc;

        // Charge storage: diffusion on the transport currents plus the
        // (optionally graded) junction depletion charges.
        let (qje, cje) = super::depletion_charge(vbe, self.cje, self.vje, self.mje);
        let (qjc, cjc) = super::depletion_charge(vbc, self.cjc, self.vjc, self.mjc);
        let qbe = self.tf * self.is * (ebe - 1.0) + qje;
        let cbe = self.tf * self.is * debe + cje;
        let qbc = self.tr * self.is * (ebc - 1.0) + qjc;
        let cbc = self.tr * self.is * debc + cjc;

        BjtEval {
            ic,
            ib,
            dic_dvbe: dict_dvbe,
            dic_dvbc: dict_dvbc - gbc,
            dib_dvbe: gbe,
            dib_dvbc: gbc,
            qbe,
            cbe,
            qbc,
            cbc,
        }
    }

    /// Base–emitter voltage at which the collector carries roughly
    /// `current` in forward-active operation (inverse transport law,
    /// ignoring the Early effect).
    pub fn vbe_at(&self, current: f64) -> f64 {
        VT_300K * (current / self.is + 1.0).ln()
    }
}

impl Default for BjtModel {
    fn default() -> Self {
        Self::fast_npn()
    }
}

/// Linearized BJT state at one bias point (polarity-normalized).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BjtEval {
    /// Collector current (into the collector), amperes.
    pub ic: f64,
    /// Base current (into the base), amperes.
    pub ib: f64,
    /// ∂ic/∂vbe.
    pub dic_dvbe: f64,
    /// ∂ic/∂vbc.
    pub dic_dvbc: f64,
    /// ∂ib/∂vbe.
    pub dib_dvbe: f64,
    /// ∂ib/∂vbc.
    pub dib_dvbc: f64,
    /// Base–emitter stored charge, coulombs.
    pub qbe: f64,
    /// ∂qbe/∂vbe, farads.
    pub cbe: f64,
    /// Base–collector stored charge, coulombs.
    pub qbc: f64,
    /// ∂qbc/∂vbc, farads.
    pub cbc: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cutoff_carries_no_current() {
        let m = BjtModel::fast_npn();
        let e = m.eval(0.0, -2.0);
        assert!(e.ic.abs() < 1e-12);
        assert!(e.ib.abs() < 1e-12);
    }

    #[test]
    fn forward_active_gain() {
        let m = BjtModel::fast_npn();
        let vbe = m.vbe_at(0.4e-3);
        let e = m.eval(vbe, vbe - 2.0); // vce = 2 V
        assert!((0.85..0.95).contains(&vbe), "vbe = {vbe}");
        let beta = e.ic / e.ib;
        assert!(
            (70.0..160.0).contains(&beta),
            "effective beta = {beta} (ic = {}, ib = {})",
            e.ic,
            e.ib
        );
    }

    #[test]
    fn early_effect_raises_ic_with_vce() {
        let m = BjtModel::fast_npn();
        let vbe = m.vbe_at(0.4e-3);
        let low = m.eval(vbe, vbe - 1.0).ic;
        let high = m.eval(vbe, vbe - 3.0).ic;
        assert!(high > low, "Early effect: {high} !> {low}");
        // Slope consistent with VAF ≈ 40 V: ~2.5 %/V.
        let slope = (high - low) / low / 2.0;
        assert!((0.01..0.05).contains(&slope), "slope {slope}");
    }

    #[test]
    fn saturation_clamps_collector_current() {
        // Forward-biased vbc steals transport current: ic drops.
        let m = BjtModel::fast_npn();
        let vbe = m.vbe_at(0.4e-3);
        let active = m.eval(vbe, vbe - 1.0).ic;
        let saturated = m.eval(vbe, vbe - 0.05).ic;
        assert!(saturated < active);
    }

    #[test]
    fn jacobian_matches_finite_differences() {
        let m = BjtModel::fast_npn();
        let pts = [(0.85, -1.5), (0.9, 0.0), (0.88, 0.7), (0.4, 0.4)];
        let dv = 1e-7;
        for (vbe, vbc) in pts {
            let e = m.eval(vbe, vbc);
            let num_dic_dvbe = (m.eval(vbe + dv, vbc).ic - m.eval(vbe - dv, vbc).ic) / (2.0 * dv);
            let num_dic_dvbc = (m.eval(vbe, vbc + dv).ic - m.eval(vbe, vbc - dv).ic) / (2.0 * dv);
            let num_dib_dvbe = (m.eval(vbe + dv, vbc).ib - m.eval(vbe - dv, vbc).ib) / (2.0 * dv);
            let num_dib_dvbc = (m.eval(vbe, vbc + dv).ib - m.eval(vbe, vbc - dv).ib) / (2.0 * dv);
            let scale = |a: f64| a.abs().max(1e-9);
            assert!(
                (num_dic_dvbe - e.dic_dvbe).abs() < 1e-3 * scale(num_dic_dvbe),
                "dic/dvbe at ({vbe},{vbc}): {num_dic_dvbe:e} vs {:e}",
                e.dic_dvbe
            );
            assert!(
                (num_dic_dvbc - e.dic_dvbc).abs() < 1e-3 * scale(num_dic_dvbc),
                "dic/dvbc at ({vbe},{vbc}): {num_dic_dvbc:e} vs {:e}",
                e.dic_dvbc
            );
            assert!(
                (num_dib_dvbe - e.dib_dvbe).abs() < 1e-3 * scale(num_dib_dvbe),
                "dib/dvbe at ({vbe},{vbc}): {num_dib_dvbe:e} vs {:e}",
                e.dib_dvbe
            );
            assert!(
                (num_dib_dvbc - e.dib_dvbc).abs() < 1e-3 * scale(num_dib_dvbc),
                "dib/dvbc at ({vbe},{vbc}): {num_dib_dvbc:e} vs {:e}",
                e.dib_dvbc
            );
        }
    }

    #[test]
    fn charges_are_derivatives_of_caps() {
        let m = BjtModel::fast_npn();
        let dv = 1e-7;
        for (vbe, vbc) in [(0.8, -1.0), (0.9, 0.2)] {
            let e = m.eval(vbe, vbc);
            let num_cbe = (m.eval(vbe + dv, vbc).qbe - m.eval(vbe - dv, vbc).qbe) / (2.0 * dv);
            let num_cbc = (m.eval(vbe, vbc + dv).qbc - m.eval(vbe, vbc - dv).qbc) / (2.0 * dv);
            assert!((num_cbe - e.cbe).abs() < 1e-3 * e.cbe.abs());
            assert!((num_cbc - e.cbc).abs() < 1e-3 * e.cbc.abs());
        }
    }

    #[test]
    fn kirchhoff_current_balance() {
        // ie = -(ic + ib) by construction; check the terminal currents sum
        // to zero for a few bias points via the eval contract.
        let m = BjtModel::fast_npn();
        let e = m.eval(0.9, -1.0);
        let ie = -(e.ic + e.ib);
        assert!((e.ic + e.ib + ie).abs() < 1e-18);
        assert!(ie < 0.0, "emitter current flows out of an NPN");
    }

    #[test]
    fn graded_junctions_modulate_caps() {
        let m = BjtModel::fast_npn().with_grading(0.75, 0.5);
        // Reverse-biased collector junction: cap below Cjc0.
        let active = m.eval(0.9, -1.5);
        assert!(
            active.cbc < m.cjc,
            "cbc {:.2e} vs cjc0 {:.2e}",
            active.cbc,
            m.cjc
        );
        // dq/dv consistency with grading enabled.
        let dv = 1e-7;
        for (vbe, vbc) in [(0.85, -1.2), (0.5, 0.2)] {
            let e = m.eval(vbe, vbc);
            let num_cbc = (m.eval(vbe, vbc + dv).qbc - m.eval(vbe, vbc - dv).qbc) / (2.0 * dv);
            assert!(
                (num_cbc - e.cbc).abs() < 1e-3 * e.cbc.abs(),
                "at ({vbe},{vbc}): {num_cbc:.3e} vs {:.3e}",
                e.cbc
            );
        }
    }

    #[test]
    fn polarity_sign() {
        assert_eq!(Polarity::Npn.sign(), 1.0);
        assert_eq!(Polarity::Pnp.sign(), -1.0);
        assert_eq!(Polarity::default(), Polarity::Npn);
    }
}
