//! Junction diode model.
//!
//! `I(V) = Is · (exp(V/(n·Vt)) − 1)` with an optional constant junction
//! capacitance. The detector load of the paper's §6.1 uses a
//! diode-connected transistor precisely because this I–V law gives "a
//! relatively high dynamic resistance at low currents, while offering a low
//! dynamic resistance at high currents"; the same nonlinearity is captured
//! here.

use super::{limexp, limexp_deriv, vcrit};
use crate::VT_300K;

/// Junction diode model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiodeModel {
    /// Saturation current, amperes.
    pub is: f64,
    /// Emission coefficient (ideality factor).
    pub n: f64,
    /// Zero-bias junction capacitance, farads.
    pub cj: f64,
    /// Junction built-in potential, volts.
    pub vj: f64,
    /// Junction grading coefficient (`0` = constant capacitance).
    pub mj: f64,
}

impl DiodeModel {
    /// A small-signal silicon junction: `Is = 3e-19 A`, `n = 1`, `Cj = 5 fF`.
    ///
    /// With these parameters the forward drop is ≈ 0.9 V at 0.4 mA, matching
    /// the paper's "VBE = 900 mV technology".
    pub fn new() -> Self {
        Self {
            is: 3.0e-19,
            n: 1.0,
            cj: 5.0e-15,
            vj: 0.75,
            mj: 0.0,
        }
    }

    /// Sets the saturation current.
    pub fn with_is(mut self, is: f64) -> Self {
        self.is = is;
        self
    }

    /// Sets the emission coefficient.
    pub fn with_n(mut self, n: f64) -> Self {
        self.n = n;
        self
    }

    /// Sets the zero-bias junction capacitance.
    pub fn with_cj(mut self, cj: f64) -> Self {
        self.cj = cj;
        self
    }

    /// Sets the junction grading (`vj` built-in potential, `mj` grading
    /// coefficient; `mj = 0.33` for a linearly graded junction, `0.5` for
    /// abrupt).
    pub fn with_grading(mut self, vj: f64, mj: f64) -> Self {
        self.vj = vj;
        self.mj = mj;
        self
    }

    /// Critical voltage for Newton limiting.
    pub fn vcrit(&self) -> f64 {
        vcrit(self.is, self.n * VT_300K)
    }

    /// Evaluates current, conductance and charge at junction voltage `v`.
    pub fn eval(&self, v: f64) -> DiodeEval {
        let nvt = self.n * VT_300K;
        let arg = v / nvt;
        let e = limexp(arg);
        let id = self.is * (e - 1.0);
        let gd = self.is * limexp_deriv(arg) / nvt;
        // Keep a floor on the conductance so reverse-biased junctions do not
        // disconnect parts of the matrix.
        let gd = gd.max(1.0e-14);
        let (q, c) = super::depletion_charge(v, self.cj, self.vj, self.mj);
        DiodeEval { id, gd, q, c }
    }

    /// Forward voltage at which the diode carries `current` (inverse of the
    /// I–V law); useful for sizing detector thresholds.
    pub fn forward_voltage(&self, current: f64) -> f64 {
        self.n * VT_300K * (current / self.is + 1.0).ln()
    }
}

impl Default for DiodeModel {
    fn default() -> Self {
        Self::new()
    }
}

/// Linearized diode state at one junction voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiodeEval {
    /// Junction current, amperes (positive = anode to cathode).
    pub id: f64,
    /// Small-signal conductance `dI/dV`, siemens.
    pub gd: f64,
    /// Stored junction charge, coulombs.
    pub q: f64,
    /// Small-signal capacitance `dQ/dV`, farads.
    pub c: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bias_no_current() {
        let d = DiodeModel::new().eval(0.0);
        assert_eq!(d.id, 0.0);
        assert!(d.gd > 0.0);
    }

    #[test]
    fn forward_drop_near_900mv_at_400ua() {
        let m = DiodeModel::new();
        let v = m.forward_voltage(0.4e-3);
        assert!(
            (0.85..0.95).contains(&v),
            "forward voltage at 0.4 mA was {v:.3} V"
        );
        // And the I-V law round-trips.
        let e = m.eval(v);
        assert!((e.id - 0.4e-3).abs() < 1e-8);
    }

    #[test]
    fn reverse_bias_saturates() {
        let m = DiodeModel::new();
        let e = m.eval(-1.0);
        assert!((e.id + m.is).abs() < 1e-20);
    }

    #[test]
    fn conductance_is_derivative_of_current() {
        let m = DiodeModel::new();
        for v in [0.5, 0.7, 0.85] {
            let dv = 1e-7;
            let num = (m.eval(v + dv).id - m.eval(v - dv).id) / (2.0 * dv);
            let ana = m.eval(v).gd;
            assert!(
                (num - ana).abs() < 1e-4 * ana.abs(),
                "at {v}: numeric {num:.4e} vs analytic {ana:.4e}"
            );
        }
    }

    #[test]
    fn nonlinear_resistance_shape() {
        // High dynamic resistance at low current, low at high current —
        // the property §6.1 relies on.
        let m = DiodeModel::new();
        let r_low = 1.0 / m.eval(0.55).gd;
        let r_high = 1.0 / m.eval(0.9).gd;
        assert!(r_low > 100.0 * r_high);
    }

    #[test]
    fn builder_setters() {
        let m = DiodeModel::new().with_is(1e-15).with_n(1.5).with_cj(1e-12);
        assert_eq!(m.is, 1e-15);
        assert_eq!(m.n, 1.5);
        assert_eq!(m.cj, 1e-12);
        let g = DiodeModel::new().with_grading(0.8, 0.33);
        assert_eq!(g.vj, 0.8);
        assert_eq!(g.mj, 0.33);
    }

    #[test]
    fn graded_junction_capacitance_shrinks_under_reverse_bias() {
        let m = DiodeModel::new().with_grading(0.75, 0.5);
        let c0 = m.eval(0.0).c;
        let c_rev = m.eval(-3.0).c;
        let c_fwd = m.eval(0.3).c;
        assert!((c0 - m.cj).abs() < 1e-20);
        assert!(c_rev < 0.5 * c0, "reverse cap {c_rev:.2e} vs {c0:.2e}");
        assert!(c_fwd > c0, "forward cap should grow");
    }

    #[test]
    fn depletion_charge_is_consistent_with_capacitance() {
        // dq/dv == c everywhere, including across the FC·Vj boundary.
        let m = DiodeModel::new().with_grading(0.75, 0.33);
        let dv = 1e-7;
        for v in [-2.0, -0.3, 0.0, 0.2, 0.374, 0.376, 0.6, 1.0] {
            let num = (m.eval(v + dv).q - m.eval(v - dv).q) / (2.0 * dv);
            let ana = m.eval(v).c;
            assert!(
                (num - ana).abs() < 1e-3 * ana.abs(),
                "at {v}: dq/dv {num:.4e} vs c {ana:.4e}"
            );
        }
    }

    #[test]
    fn zero_grading_matches_constant_capacitor() {
        let m = DiodeModel::new(); // mj = 0
        for v in [-1.0, 0.0, 0.9] {
            let e = m.eval(v);
            assert!((e.q - m.cj * v).abs() < 1e-30);
            assert!((e.c - m.cj).abs() < 1e-30);
        }
    }
}
