//! `spicier` — a small, self-contained analog circuit simulator.
//!
//! This crate is the simulation substrate for the reproduction of
//! *"Design For Testability Method for CML Digital Circuits"* (DATE 1999).
//! The paper evaluates its design-for-testability technique entirely with
//! SPICE-class analog simulation (Spectre); `spicier` provides the same
//! class of capability from scratch:
//!
//! * a [`netlist`] of resistors, capacitors, inductors, independent
//!   sources (DC / pulse / sine / PWL), junction diodes and bipolar
//!   transistors (Ebers–Moll transport model with Early effect and
//!   junction/diffusion charge storage);
//! * modified nodal analysis ([`analysis::mna`]) with shared stamps;
//! * Newton–Raphson DC operating point with junction-voltage limiting and
//!   a five-rung convergence recovery ladder — damped Newton, `gmin`
//!   stepping, source stepping, pseudo-transient continuation — reported
//!   per solve via [`analysis::dc::ConvergenceReport`];
//! * adaptive transient analysis with trapezoidal / backward-Euler
//!   integration, local-truncation-error step control, source breakpoints,
//!   and salvage of partial waveforms on mid-run failure
//!   ([`analysis::tran`]);
//! * dense and sparse (Gilbert–Peierls) LU solvers ([`linalg`]);
//! * parameter sweeps with thread-level parallelism ([`analysis::sweep`]).
//!
//! # Quick example
//!
//! Solve a resistive divider:
//!
//! ```
//! use spicier::netlist::Netlist;
//! use spicier::analysis::dc::{self, DcOptions};
//!
//! # fn main() -> Result<(), spicier::Error> {
//! let mut nl = Netlist::new();
//! let vin = nl.node("vin");
//! let out = nl.node("out");
//! nl.vdc("V1", vin, Netlist::GROUND, 3.3)?;
//! nl.resistor("R1", vin, out, 1.0e3)?;
//! nl.resistor("R2", out, Netlist::GROUND, 2.0e3)?;
//! let circuit = nl.compile()?;
//! let op = dc::operating_point(&circuit, &DcOptions::default())?;
//! assert!((op.voltage(out) - 2.2).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod chaos;
pub mod devices;
pub mod error;
pub mod linalg;
pub mod netlist;
pub mod runner;
pub mod spice;
pub mod telemetry;
pub mod units;

pub use crate::analysis::budget::{CancelHandle, CancelToken, Phase, RunBudget};
pub use crate::analysis::dc::{
    operating_point, ConvergenceReport, DcOptions, DcSolution, RecoveryRung,
};
pub use crate::analysis::mna::SolveWorkspace;
pub use crate::analysis::preflight::{
    assert_preflight, preflight, PreflightFinding, PreflightReport,
};
pub use crate::analysis::tran::{
    transient, transient_salvage, transient_salvage_with, transient_with, TranFailure, TranOptions,
    TranResult,
};
pub use crate::error::Error;
pub use crate::linalg::SolveQuality;
pub use crate::netlist::{Circuit, Netlist, NodeId};
pub use crate::telemetry::TelemetrySummary;

/// Boltzmann thermal voltage kT/q at the default simulation temperature
/// (27 °C / 300.15 K), in volts.
pub const VT_300K: f64 = 0.025864186;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
