//! SPICE-deck import and export.
//!
//! Reads the classic card format (a practical subset) into a [`Netlist`]
//! and writes a netlist back out, so circuits built here can be
//! cross-checked in any external SPICE and vice versa:
//!
//! ```text
//! CML buffer with a planted pipe
//! VGND vgnd 0 3.3
//! RL1  vgnd opb 625
//! Q1   opb a tail NPNFAST
//! FLT1 tail 0 4k        ; comment: the pipe
//! .model NPNFAST NPN (IS=3e-19 BF=100 TF=4p TR=0.5n)
//! .tran 10p 40n
//! .end
//! ```
//!
//! Supported cards: `R`, `C`, `L`, `V`, `I` (DC / `PULSE` / `SIN` / `PWL`),
//! `D`, `Q` (NPN/PNP via `.model`), `E` (VCVS), `G` (VCCS), `X`
//! (subcircuit instances), `.subckt`/`.ends`, `.model`, `.tran`, `.dc`,
//! `.ac`, `.op`, `.ic`, `.end`, `*`/`;` comments and `+` continuations.
//! Values use engineering suffixes (`4k`, `10p`, `1meg`).

use crate::devices::{BjtModel, DiodeModel, Polarity};
use crate::error::Error;
use crate::netlist::{Netlist, SourceWave};
use crate::units::parse_value;
use std::collections::HashMap;
use std::fmt::Write as _;

/// An analysis request found in the deck.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnalysisCard {
    /// `.op` — DC operating point.
    Op,
    /// `.tran tstep tstop` (tstep is advisory; the engine is adaptive).
    Tran {
        /// Suggested timestep, seconds.
        t_step: f64,
        /// End time, seconds.
        t_stop: f64,
    },
    /// `.dc <source> <start> <stop> <step>`.
    Dc {
        /// Swept voltage-source name.
        source: String,
        /// Sweep start, volts.
        start: f64,
        /// Sweep stop, volts.
        stop: f64,
        /// Sweep increment, volts.
        step: f64,
    },
    /// `.ac dec <points> <fstart> <fstop>`.
    Ac {
        /// Points per decade.
        points_per_decade: usize,
        /// Start frequency, hertz.
        f_start: f64,
        /// Stop frequency, hertz.
        f_stop: f64,
    },
}

/// A parsed deck: title, netlist, analyses and `.ic` cards.
#[derive(Debug, Clone)]
pub struct ParsedDeck {
    /// The deck's title line.
    pub title: String,
    /// The circuit.
    pub netlist: Netlist,
    /// Analyses, in deck order.
    pub analyses: Vec<AnalysisCard>,
    /// `.ic` node-voltage overrides `(node name, volts)`.
    pub initial_conditions: Vec<(String, f64)>,
}

fn perr(line_no: usize, msg: impl std::fmt::Display) -> Error {
    Error::ParseValue(format!("line {line_no}: {msg}"))
}

/// Joins continuation lines (`+`), strips comments, and yields
/// `(original line number, logical line)`.
fn logical_lines(text: &str, first_line_no: usize) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let no = idx + first_line_no;
        // Strip inline comments.
        let mut line = raw;
        if let Some(pos) = line.find(';') {
            line = &line[..pos];
        }
        if let Some(pos) = line.find('$') {
            line = &line[..pos];
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        if let Some(cont) = trimmed.strip_prefix('+') {
            if let Some(last) = out.last_mut() {
                last.1.push(' ');
                last.1.push_str(cont.trim());
                continue;
            }
        }
        out.push((no, trimmed.to_string()));
    }
    out
}

/// Splits a card into tokens, keeping `PULSE(...)`-style groups together.
fn tokenize(line: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut depth = 0usize;
    for ch in line.chars() {
        match ch {
            '(' => {
                depth += 1;
                current.push(ch);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                current.push(ch);
            }
            c if c.is_whitespace() && depth == 0 => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            '=' if depth == 0 => {
                // Keep `KEY=VALUE` as one token.
                current.push('=');
            }
            c => current.push(c),
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Parses a source specification (everything after the two node tokens).
fn parse_source_wave(tokens: &[String], line_no: usize) -> Result<SourceWave, Error> {
    if tokens.is_empty() {
        return Err(perr(line_no, "missing source value"));
    }
    let first = tokens[0].to_ascii_uppercase();
    let args_of = |t: &str| -> Result<Vec<f64>, Error> {
        let open = t.find('(').ok_or_else(|| perr(line_no, "expected ("))?;
        let close = t.rfind(')').ok_or_else(|| perr(line_no, "expected )"))?;
        t[open + 1..close]
            .split([' ', ',', '\t'])
            .filter(|s| !s.is_empty())
            .map(parse_value)
            .collect()
    };
    if first.starts_with("PULSE") {
        let a = args_of(&tokens[0])?;
        if a.len() < 7 {
            return Err(perr(line_no, "PULSE needs v1 v2 td tr tf pw per"));
        }
        Ok(SourceWave::Pulse {
            v1: a[0],
            v2: a[1],
            delay: a[2],
            rise: a[3],
            fall: a[4],
            width: a[5],
            period: a[6],
        })
    } else if first.starts_with("SIN") {
        let a = args_of(&tokens[0])?;
        if a.len() < 3 {
            return Err(perr(line_no, "SIN needs offset amplitude freq [delay]"));
        }
        Ok(SourceWave::Sin {
            offset: a[0],
            amplitude: a[1],
            freq: a[2],
            delay: a.get(3).copied().unwrap_or(0.0),
        })
    } else if first.starts_with("PWL") {
        let a = args_of(&tokens[0])?;
        if a.len() < 2 || a.len() % 2 != 0 {
            return Err(perr(line_no, "PWL needs t1 v1 t2 v2 ..."));
        }
        Ok(SourceWave::Pwl(a.chunks(2).map(|c| (c[0], c[1])).collect()))
    } else if first == "DC" {
        let v = tokens
            .get(1)
            .ok_or_else(|| perr(line_no, "DC needs a value"))?;
        Ok(SourceWave::Dc(parse_value(v)?))
    } else {
        Ok(SourceWave::Dc(parse_value(&tokens[0])?))
    }
}

#[derive(Debug, Default)]
struct ModelRegistry {
    bjt: HashMap<String, BjtModel>,
    diode: HashMap<String, DiodeModel>,
}

fn parse_model_params(tokens: &[String]) -> HashMap<String, f64> {
    let mut params = HashMap::new();
    for t in tokens {
        // A parenthesized group tokenizes as one unit; split it back up.
        let cleaned = t.trim_matches(|c| c == '(' || c == ')');
        for part in cleaned.split_whitespace() {
            if let Some((key, value)) = part.split_once('=') {
                if let Ok(v) = parse_value(value) {
                    params.insert(key.to_ascii_uppercase(), v);
                }
            }
        }
    }
    params
}

fn parse_model(tokens: &[String], reg: &mut ModelRegistry, line_no: usize) -> Result<(), Error> {
    // .model NAME TYPE (K=V ...)
    if tokens.len() < 3 {
        return Err(perr(line_no, ".model needs a name and a type"));
    }
    let name = tokens[1].to_ascii_uppercase();
    let kind = tokens[2]
        .trim_matches(|c| c == '(' || c == ')')
        .to_ascii_uppercase();
    let params = parse_model_params(&tokens[2..]);
    match kind.as_str() {
        "NPN" | "PNP" => {
            let mut m = BjtModel::fast_npn();
            if kind == "PNP" {
                m.polarity = Polarity::Pnp;
            }
            if let Some(&v) = params.get("IS") {
                m.is = v;
            }
            if let Some(&v) = params.get("BF") {
                m.bf = v;
            }
            if let Some(&v) = params.get("BR") {
                m.br = v;
            }
            if let Some(&v) = params.get("VAF") {
                m.vaf = v;
            }
            if let Some(&v) = params.get("CJE") {
                m.cje = v;
            }
            if let Some(&v) = params.get("CJC") {
                m.cjc = v;
            }
            if let Some(&v) = params.get("TF") {
                m.tf = v;
            }
            if let Some(&v) = params.get("TR") {
                m.tr = v;
            }
            if let Some(&v) = params.get("VJE") {
                m.vje = v;
            }
            if let Some(&v) = params.get("MJE") {
                m.mje = v;
            }
            if let Some(&v) = params.get("VJC") {
                m.vjc = v;
            }
            if let Some(&v) = params.get("MJC") {
                m.mjc = v;
            }
            reg.bjt.insert(name, m);
            Ok(())
        }
        "D" => {
            let mut m = DiodeModel::new();
            if let Some(&v) = params.get("IS") {
                m.is = v;
            }
            if let Some(&v) = params.get("N") {
                m.n = v;
            }
            if let Some(&v) = params.get("CJ").or_else(|| params.get("CJO")) {
                m.cj = v;
            }
            if let Some(&v) = params.get("VJ") {
                m.vj = v;
            }
            if let Some(&v) = params.get("M").or_else(|| params.get("MJ")) {
                m.mj = v;
            }
            reg.diode.insert(name, m);
            Ok(())
        }
        other => Err(perr(line_no, format!("unsupported model type `{other}`"))),
    }
}

/// Parses a SPICE deck. The first line is the title, per tradition.
///
/// # Errors
///
/// Returns [`Error::ParseValue`] with a line number for malformed cards,
/// or the underlying netlist error for semantic problems (duplicate
/// element names, invalid values).
pub fn parse_deck(text: &str) -> Result<ParsedDeck, Error> {
    let mut lines = text.lines();
    let title = lines.next().unwrap_or("").trim().to_string();
    let body: String = lines.collect::<Vec<_>>().join("\n");

    // Two passes: models first (cards may reference them before they are
    // declared, as real decks do).
    // Line numbers refer to the full deck; the body starts at line 2.
    let logical = logical_lines(&body, 2);
    let mut registry = ModelRegistry::default();
    for (no, line) in &logical {
        let tokens = tokenize(line);
        if tokens
            .first()
            .is_some_and(|t| t.eq_ignore_ascii_case(".model"))
        {
            parse_model(&tokens, &mut registry, *no)?;
        }
    }

    // Collect `.subckt` definitions and remove their bodies from the main
    // card stream.
    let mut subckts: HashMap<String, Subckt> = HashMap::new();
    let mut main_cards: Vec<(usize, String)> = Vec::new();
    let mut current: Option<(String, Subckt)> = None;
    for (no, line) in &logical {
        let tokens = tokenize(line);
        let upper = tokens[0].to_ascii_uppercase();
        if upper == ".SUBCKT" {
            if current.is_some() {
                return Err(perr(*no, "nested .subckt definitions are not supported"));
            }
            if tokens.len() < 3 {
                return Err(perr(*no, ".subckt needs a name and at least one port"));
            }
            current = Some((
                tokens[1].to_ascii_uppercase(),
                Subckt {
                    ports: tokens[2..].to_vec(),
                    cards: Vec::new(),
                },
            ));
        } else if upper == ".ENDS" {
            let (name, def) = current
                .take()
                .ok_or_else(|| perr(*no, ".ends without .subckt"))?;
            subckts.insert(name, def);
        } else if let Some((_, def)) = &mut current {
            def.cards.push((*no, line.clone()));
        } else {
            main_cards.push((*no, line.clone()));
        }
    }
    if current.is_some() {
        return Err(perr(0, ".subckt without matching .ends"));
    }

    let mut nl = Netlist::new();
    let mut analyses = Vec::new();
    let mut initial_conditions = Vec::new();
    let empty_map = HashMap::new();
    for (no, line) in &main_cards {
        let tokens = tokenize(line);
        let head = tokens[0].clone();
        let upper = head.to_ascii_uppercase();
        if upper.starts_with('.') {
            match upper.as_str() {
                ".MODEL" => {} // handled in pass 1
                ".END" => break,
                ".OP" => analyses.push(AnalysisCard::Op),
                ".TRAN" => {
                    if tokens.len() < 3 {
                        return Err(perr(*no, ".tran needs tstep tstop"));
                    }
                    analyses.push(AnalysisCard::Tran {
                        t_step: parse_value(&tokens[1])?,
                        t_stop: parse_value(&tokens[2])?,
                    });
                }
                ".DC" => {
                    if tokens.len() < 5 {
                        return Err(perr(*no, ".dc needs source start stop step"));
                    }
                    analyses.push(AnalysisCard::Dc {
                        source: tokens[1].clone(),
                        start: parse_value(&tokens[2])?,
                        stop: parse_value(&tokens[3])?,
                        step: parse_value(&tokens[4])?,
                    });
                }
                ".AC" => {
                    if tokens.len() < 5 || !tokens[1].eq_ignore_ascii_case("dec") {
                        return Err(perr(*no, ".ac needs `dec points fstart fstop`"));
                    }
                    analyses.push(AnalysisCard::Ac {
                        points_per_decade: parse_value(&tokens[2])? as usize,
                        f_start: parse_value(&tokens[3])?,
                        f_stop: parse_value(&tokens[4])?,
                    });
                }
                ".IC" => {
                    // .ic V(node)=value [V(node)=value ...]
                    for t in &tokens[1..] {
                        let Some((lhs, rhs)) = t.split_once('=') else {
                            return Err(perr(*no, ".ic entries look like V(node)=value"));
                        };
                        let node = lhs
                            .trim()
                            .trim_start_matches(['V', 'v'])
                            .trim_start_matches('(')
                            .trim_end_matches(')')
                            .to_string();
                        initial_conditions.push((node, parse_value(rhs)?));
                    }
                }
                other => return Err(perr(*no, format!("unsupported card `{other}`"))),
            }
            continue;
        }

        // Element card (possibly a subcircuit instance).
        expand_element_card(
            &mut nl, &tokens, *no, "", &empty_map, &registry, &subckts, 0,
        )?;
    }
    Ok(ParsedDeck {
        title,
        netlist: nl,
        analyses,
        initial_conditions,
    })
}

/// A `.subckt` definition: port names and body cards.
#[derive(Debug, Clone)]
struct Subckt {
    ports: Vec<String>,
    cards: Vec<(usize, String)>,
}

/// Deepest allowed subcircuit nesting (defends against recursion).
const MAX_SUBCKT_DEPTH: usize = 16;

/// Expands one element card into `nl`, under an instance `prefix` and a
/// port→outer-node mapping. `X` cards recurse into their subcircuit.
#[allow(clippy::too_many_arguments)]
fn expand_element_card(
    nl: &mut Netlist,
    tokens: &[String],
    no: usize,
    prefix: &str,
    node_map: &HashMap<String, String>,
    registry: &ModelRegistry,
    subckts: &HashMap<String, Subckt>,
    depth: usize,
) -> Result<(), Error> {
    let head = tokens[0].clone();
    let upper = head.to_ascii_uppercase();
    if upper.starts_with('.') {
        // Models are global (pass 1); other cards are illegal in bodies.
        if upper == ".MODEL" {
            return Ok(());
        }
        return Err(perr(
            no,
            format!("card `{upper}` not allowed inside .subckt"),
        ));
    }
    let name = format!("{prefix}{head}");
    // Node resolution: ground stays global; ports map to the outer scope;
    // everything else becomes instance-local.
    let resolve = |nl: &mut Netlist, token: &str| -> crate::netlist::NodeId {
        if token == "0" {
            Netlist::GROUND
        } else if let Some(outer) = node_map.get(token) {
            nl.node(outer)
        } else {
            nl.node(&format!("{prefix}{token}"))
        }
    };
    let need = |k: usize| -> Result<(), Error> {
        if tokens.len() < k {
            Err(perr(no, format!("`{head}` needs at least {k} fields")))
        } else {
            Ok(())
        }
    };
    let kind = upper.chars().next().expect("non-empty token");
    match kind {
        'R' | 'C' | 'L' => {
            need(4)?;
            let p = resolve(nl, &tokens[1]);
            let n = resolve(nl, &tokens[2]);
            let v = parse_value(&tokens[3])?;
            match kind {
                'R' => nl.resistor(&name, p, n, v)?,
                'C' => nl.capacitor(&name, p, n, v)?,
                _ => nl.inductor(&name, p, n, v)?,
            }
        }
        'V' | 'I' => {
            need(4)?;
            let p = resolve(nl, &tokens[1]);
            let n = resolve(nl, &tokens[2]);
            let wave = parse_source_wave(&tokens[3..], no)?;
            if kind == 'V' {
                nl.vsource(&name, p, n, wave)?;
            } else {
                nl.isource(&name, p, n, wave)?;
            }
        }
        'D' => {
            need(3)?;
            let a = resolve(nl, &tokens[1]);
            let c = resolve(nl, &tokens[2]);
            let model = tokens
                .get(3)
                .and_then(|m| registry.diode.get(&m.to_ascii_uppercase()))
                .copied()
                .unwrap_or_default();
            nl.diode(&name, a, c, model)?;
        }
        'Q' => {
            need(4)?;
            let c = resolve(nl, &tokens[1]);
            let b = resolve(nl, &tokens[2]);
            let e = resolve(nl, &tokens[3]);
            let model = tokens
                .get(4)
                .and_then(|m| registry.bjt.get(&m.to_ascii_uppercase()))
                .copied()
                .unwrap_or_default();
            nl.bjt(&name, c, b, e, model)?;
        }
        'E' | 'G' => {
            need(6)?;
            let p = resolve(nl, &tokens[1]);
            let n = resolve(nl, &tokens[2]);
            let cp = resolve(nl, &tokens[3]);
            let cn = resolve(nl, &tokens[4]);
            let gain = parse_value(&tokens[5])?;
            if kind == 'E' {
                nl.vcvs(&name, p, n, cp, cn, gain)?;
            } else {
                nl.vccs(&name, p, n, cp, cn, gain)?;
            }
        }
        'X' => {
            // X<inst> node1 ... nodeN SUBNAME
            need(3)?;
            if depth >= MAX_SUBCKT_DEPTH {
                return Err(perr(no, "subcircuit nesting too deep"));
            }
            let sub_name = tokens.last().expect("len checked").to_ascii_uppercase();
            let sub = subckts
                .get(&sub_name)
                .ok_or_else(|| perr(no, format!("unknown subcircuit `{sub_name}`")))?;
            let given = &tokens[1..tokens.len() - 1];
            if given.len() != sub.ports.len() {
                return Err(perr(
                    no,
                    format!(
                        "`{head}` passes {} nodes but `{sub_name}` has {} ports",
                        given.len(),
                        sub.ports.len()
                    ),
                ));
            }
            // Resolve the given nodes in the *current* scope, then bind
            // the subcircuit's port names to those resolved global names.
            let mut inner_map = HashMap::new();
            for (port, outer_token) in sub.ports.iter().zip(given) {
                let outer_id = resolve(nl, outer_token);
                let outer_name = nl.node_name(outer_id).to_string();
                inner_map.insert(port.clone(), outer_name);
            }
            let inner_prefix = format!("{name}.");
            for (line_no, card) in &sub.cards {
                let card_tokens = tokenize(card);
                expand_element_card(
                    nl,
                    &card_tokens,
                    *line_no,
                    &inner_prefix,
                    &inner_map,
                    registry,
                    subckts,
                    depth + 1,
                )?;
            }
        }
        other => {
            return Err(perr(no, format!("unsupported element letter `{other}`")));
        }
    }
    Ok(())
}

fn fmt_wave(wave: &SourceWave) -> String {
    match wave {
        SourceWave::Dc(v) => format!("DC {v:e}"),
        SourceWave::Pulse {
            v1,
            v2,
            delay,
            rise,
            fall,
            width,
            period,
        } => format!("PULSE({v1:e} {v2:e} {delay:e} {rise:e} {fall:e} {width:e} {period:e})"),
        SourceWave::Sin {
            offset,
            amplitude,
            freq,
            delay,
        } => format!("SIN({offset:e} {amplitude:e} {freq:e} {delay:e})"),
        SourceWave::Pwl(points) => {
            let mut s = String::from("PWL(");
            for (i, (t, v)) in points.iter().enumerate() {
                if i > 0 {
                    s.push(' ');
                }
                let _ = write!(s, "{t:e} {v:e}");
            }
            s.push(')');
            s
        }
    }
}

/// Writes a netlist as a SPICE deck. Element names are sanitized to start
/// with their type letter (hierarchical names like `DUT.Q3` become
/// `QDUT.Q3`), and per-device models are emitted as numbered `.model`
/// cards.
pub fn write_deck(netlist: &Netlist, title: &str) -> String {
    use crate::netlist::Element;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let mut model_cards: Vec<String> = Vec::new();
    let mut bjt_models: Vec<(BjtModel, String)> = Vec::new();
    let mut diode_models: Vec<(DiodeModel, String)> = Vec::new();
    let node = |id| netlist.node_name(id);
    for (name, element) in netlist.elements() {
        let prefixed = |tag: &str| {
            if name.to_ascii_uppercase().starts_with(tag) {
                name.to_string()
            } else {
                format!("{tag}{name}")
            }
        };
        match element {
            Element::Resistor { p, n, value } => {
                let _ = writeln!(out, "{} {} {} {value:e}", prefixed("R"), node(*p), node(*n));
            }
            Element::Capacitor { p, n, value } => {
                let _ = writeln!(out, "{} {} {} {value:e}", prefixed("C"), node(*p), node(*n));
            }
            Element::Inductor { p, n, value } => {
                let _ = writeln!(out, "{} {} {} {value:e}", prefixed("L"), node(*p), node(*n));
            }
            Element::VoltageSource { p, n, wave } => {
                let _ = writeln!(
                    out,
                    "{} {} {} {}",
                    prefixed("V"),
                    node(*p),
                    node(*n),
                    fmt_wave(wave)
                );
            }
            Element::CurrentSource { p, n, wave } => {
                let _ = writeln!(
                    out,
                    "{} {} {} {}",
                    prefixed("I"),
                    node(*p),
                    node(*n),
                    fmt_wave(wave)
                );
            }
            Element::Diode {
                anode,
                cathode,
                model,
            } => {
                let id = match diode_models.iter().position(|(m, _)| m == model) {
                    Some(i) => diode_models[i].1.clone(),
                    None => {
                        let id = format!("DMOD{}", diode_models.len());
                        model_cards.push(format!(
                            ".model {id} D (IS={:e} N={:e} CJ={:e} VJ={:e} M={:e})",
                            model.is, model.n, model.cj, model.vj, model.mj
                        ));
                        diode_models.push((*model, id.clone()));
                        id
                    }
                };
                let _ = writeln!(
                    out,
                    "{} {} {} {id}",
                    prefixed("D"),
                    node(*anode),
                    node(*cathode)
                );
            }
            Element::Bjt {
                collector,
                base,
                emitter,
                model,
            } => {
                let id = match bjt_models.iter().position(|(m, _)| m == model) {
                    Some(i) => bjt_models[i].1.clone(),
                    None => {
                        let id = format!("QMOD{}", bjt_models.len());
                        let kind = match model.polarity {
                            Polarity::Npn => "NPN",
                            Polarity::Pnp => "PNP",
                        };
                        model_cards.push(format!(
                            ".model {id} {kind} (IS={:e} BF={:e} BR={:e} VAF={:e} \
                             CJE={:e} VJE={:e} MJE={:e} CJC={:e} VJC={:e} MJC={:e} \
                             TF={:e} TR={:e})",
                            model.is,
                            model.bf,
                            model.br,
                            model.vaf,
                            model.cje,
                            model.vje,
                            model.mje,
                            model.cjc,
                            model.vjc,
                            model.mjc,
                            model.tf,
                            model.tr
                        ));
                        bjt_models.push((*model, id.clone()));
                        id
                    }
                };
                let _ = writeln!(
                    out,
                    "{} {} {} {} {id}",
                    prefixed("Q"),
                    node(*collector),
                    node(*base),
                    node(*emitter)
                );
            }
            Element::Vcvs { p, n, cp, cn, gain } => {
                let _ = writeln!(
                    out,
                    "{} {} {} {} {} {gain:e}",
                    prefixed("E"),
                    node(*p),
                    node(*n),
                    node(*cp),
                    node(*cn)
                );
            }
            Element::Vccs { p, n, cp, cn, gm } => {
                let _ = writeln!(
                    out,
                    "{} {} {} {} {} {gm:e}",
                    prefixed("G"),
                    node(*p),
                    node(*n),
                    node(*cp),
                    node(*cn)
                );
            }
        }
    }
    for card in model_cards {
        let _ = writeln!(out, "{card}");
    }
    let _ = writeln!(out, ".end");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::dc::{operating_point, DcOptions};

    #[test]
    fn parses_divider_and_solves() {
        let deck = "\
simple divider
V1 in 0 3.3
R1 in out 1k
R2 out 0 2k
.op
.end
";
        let parsed = parse_deck(deck).unwrap();
        assert_eq!(parsed.title, "simple divider");
        assert_eq!(parsed.analyses, vec![AnalysisCard::Op]);
        let circuit = parsed.netlist.compile().unwrap();
        let out = circuit.find_node("out").unwrap();
        let op = operating_point(&circuit, &DcOptions::default()).unwrap();
        assert!((op.voltage(out) - 2.2).abs() < 1e-6);
    }

    #[test]
    fn parses_sources_comments_and_continuations() {
        let deck = "\
sources
* a comment line
V1 a 0 PULSE(0 1 0 1n 1n 4n 10n) ; trailing comment
V2 b 0 SIN(1.65 0.25 100meg)
V3 c 0 PWL(0 0
+ 1n 3.3)
I1 0 d DC 1m
R1 a 0 1k
R2 b 0 1k
R3 c 0 1k
R4 d 0 1k
.tran 10p 20n
.end
";
        let parsed = parse_deck(deck).unwrap();
        assert_eq!(parsed.netlist.element_count(), 8);
        match parsed.netlist.element("V1").unwrap() {
            crate::netlist::Element::VoltageSource {
                wave: SourceWave::Pulse { period, .. },
                ..
            } => assert!((period - 10e-9).abs() < 1e-18),
            other => panic!("wrong V1: {other:?}"),
        }
        match parsed.netlist.element("V3").unwrap() {
            crate::netlist::Element::VoltageSource {
                wave: SourceWave::Pwl(points),
                ..
            } => assert_eq!(points.len(), 2),
            other => panic!("wrong V3: {other:?}"),
        }
        assert!(matches!(
            parsed.analyses[0],
            AnalysisCard::Tran { t_stop, .. } if (t_stop - 20e-9).abs() < 1e-18
        ));
    }

    #[test]
    fn parses_models_and_devices() {
        let deck = "\
bjt test
VCC vcc 0 3.3
VB b 0 1.3
RC vcc c 1k
RE e 0 1k
Q1 c b e FASTNPN
D1 c 0 SMALLD
.model FASTNPN NPN (IS=3e-19 BF=50 TR=1n)
.model SMALLD D (IS=1e-18 N=1.2)
.end
";
        let parsed = parse_deck(deck).unwrap();
        match parsed.netlist.element("Q1").unwrap() {
            crate::netlist::Element::Bjt { model, .. } => {
                assert_eq!(model.bf, 50.0);
                assert_eq!(model.is, 3e-19);
                assert_eq!(model.tr, 1e-9);
            }
            other => panic!("wrong Q1: {other:?}"),
        }
        match parsed.netlist.element("D1").unwrap() {
            crate::netlist::Element::Diode { model, .. } => {
                assert_eq!(model.n, 1.2);
            }
            other => panic!("wrong D1: {other:?}"),
        }
    }

    #[test]
    fn parses_controlled_sources_and_solves() {
        // A VCVS with gain 2 doubling a divider output.
        let deck = "\
controlled
V1 in 0 1.0
R1 in mid 1k
R2 mid 0 1k
E1 out 0 mid 0 2.0
RL out 0 1k
G1 0 gnode mid 0 1m
RG gnode 0 1k
.end
";
        let parsed = parse_deck(deck).unwrap();
        let circuit = parsed.netlist.compile().unwrap();
        let op = operating_point(&circuit, &DcOptions::default()).unwrap();
        let out = circuit.find_node("out").unwrap();
        let gnode = circuit.find_node("gnode").unwrap();
        // mid = 0.5 V → out = 1.0 V; G injects 0.5 mA into gnode → 0.5 V.
        assert!((op.voltage(out) - 1.0).abs() < 1e-6);
        assert!((op.voltage(gnode) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn parses_ic_and_dc_cards() {
        let deck = "\
cards
V1 a 0 1.0
R1 a b 1k
C1 b 0 1n
.ic V(b)=0.25
.dc V1 0 3 0.5
.end
";
        let parsed = parse_deck(deck).unwrap();
        assert_eq!(parsed.initial_conditions, vec![("b".to_string(), 0.25)]);
        assert!(matches!(
            &parsed.analyses[0],
            AnalysisCard::Dc { source, stop, .. } if source == "V1" && *stop == 3.0
        ));
    }

    #[test]
    fn subcircuits_expand_hierarchically() {
        // A divider subcircuit instantiated twice, once inside another
        // subcircuit (nesting via instantiation).
        let deck = "\
subckt test
.subckt DIV in out
R1 in out 1k
R2 out 0 1k
.ends
.subckt QUARTER in out
XA in mid DIV
XB mid out DIV
.ends
V1 top 0 4.0
X1 top half DIV
X2 top quarter QUARTER
.op
.end
";
        let parsed = parse_deck(deck).unwrap();
        // X1 expands to two resistors, X2 to four.
        assert_eq!(parsed.netlist.element_count(), 1 + 2 + 4);
        assert!(parsed.netlist.element("X1.R1").is_ok());
        assert!(parsed.netlist.element("X2.XA.R2").is_ok());
        let circuit = parsed.netlist.compile().unwrap();
        let op = crate::analysis::dc::operating_point(
            &circuit,
            &crate::analysis::dc::DcOptions::default(),
        )
        .unwrap();
        let half = circuit.find_node("half").unwrap();
        let quarter = circuit.find_node("quarter").unwrap();
        assert!((op.voltage(half) - 2.0).abs() < 1e-6);
        // QUARTER = two cascaded loaded dividers: 4·(2/5)·(1/2)... compute:
        // in-mid-out ladder: out = in·R2/(R1+R2+...) — just assert the
        // known ladder solution 4·1/5 = 0.8 V? Verify numerically instead:
        // mid sees R1 to in, R2 to gnd, R1 to out; out sees R2 to gnd.
        // Solving: out = in/5.
        assert!(
            (op.voltage(quarter) - 0.8).abs() < 1e-6,
            "quarter = {}",
            op.voltage(quarter)
        );
    }

    #[test]
    fn subckt_port_count_mismatch_is_an_error() {
        let deck = "\
t
.subckt DIV in out
R1 in out 1k
.ends
V1 a 0 1
X1 a DIV
.end
";
        let err = parse_deck(deck).unwrap_err();
        assert!(err.to_string().contains("ports"), "{err}");
    }

    #[test]
    fn unknown_subckt_is_an_error() {
        let deck = "t
V1 a 0 1
X1 a 0 NOPE
.end
";
        assert!(parse_deck(deck).is_err());
    }

    #[test]
    fn unterminated_subckt_is_an_error() {
        let deck = "t
.subckt D a b
R1 a b 1k
V1 x 0 1
.end
";
        assert!(parse_deck(deck).is_err());
    }

    #[test]
    fn rejects_garbage_with_line_numbers() {
        let deck = "title\nR1 a 0\n.end\n";
        let err = parse_deck(deck).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let deck = "title\nX1 a 0 foo\n.end\n";
        assert!(parse_deck(deck).is_err());
        let deck = "title\n.noise V1\n.end\n";
        assert!(parse_deck(deck).is_err());
    }

    #[test]
    fn export_round_trips_through_parse() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource(
            "V1",
            a,
            Netlist::GROUND,
            SourceWave::square(0.0, 1.0, 1e8, 0.1),
        )
        .unwrap();
        nl.resistor("R1", a, b, 625.0).unwrap();
        nl.capacitor("C1", b, Netlist::GROUND, 40e-15).unwrap();
        nl.bjt("Q1", a, b, Netlist::GROUND, BjtModel::fast_npn())
            .unwrap();
        nl.diode("D1", b, Netlist::GROUND, DiodeModel::new())
            .unwrap();
        nl.vcvs("E1", b, Netlist::GROUND, a, Netlist::GROUND, 2.5)
            .unwrap();
        let deck = write_deck(&nl, "round trip");
        let parsed = parse_deck(&deck).unwrap();
        assert_eq!(parsed.title, "round trip");
        assert_eq!(parsed.netlist.element_count(), nl.element_count());
        // Values survive.
        match parsed.netlist.element("R1").unwrap() {
            crate::netlist::Element::Resistor { value, .. } => {
                assert!((value - 625.0).abs() < 1e-9)
            }
            other => panic!("wrong R1: {other:?}"),
        }
        match parsed.netlist.element("Q1").unwrap() {
            crate::netlist::Element::Bjt { model, .. } => {
                assert_eq!(*model, BjtModel::fast_npn())
            }
            other => panic!("wrong Q1: {other:?}"),
        }
        match parsed.netlist.element("E1").unwrap() {
            crate::netlist::Element::Vcvs { gain, .. } => assert_eq!(*gain, 2.5),
            other => panic!("wrong E1: {other:?}"),
        }
    }

    #[test]
    fn exported_hierarchical_names_get_type_prefixes() {
        let mut nl = Netlist::new();
        let a = nl.node("x.op");
        nl.resistor("DUT.RL1", a, Netlist::GROUND, 625.0).unwrap();
        let deck = write_deck(&nl, "t");
        assert!(deck.contains("RDUT.RL1"), "{deck}");
        // And it parses back as a resistor.
        let parsed = parse_deck(&deck).unwrap();
        assert!(parsed.netlist.element("RDUT.RL1").is_ok());
    }
}
