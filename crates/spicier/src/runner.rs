//! Deck runner: executes every analysis card of a parsed SPICE deck and
//! renders a plain-text report. Backs the `spicier` command-line binary
//! and is directly testable in-library.

use crate::analysis::ac::{ac_analysis, decade_freqs, AcOptions};
use crate::analysis::dc::{operating_point, sweep_vsource, DcOptions};
use crate::analysis::tran::{transient, TranOptions};
use crate::error::Error;
use crate::spice::{parse_deck, AnalysisCard};
use std::fmt::Write as _;

/// Parses `text` as a SPICE deck and runs every analysis card, returning
/// a human-readable report.
///
/// `.op` prints node voltages; `.dc` prints the swept node table; `.tran`
/// prints a CSV of all node voltages; `.ac` prints magnitude/phase of all
/// nodes. `.ic` cards apply to transient runs.
///
/// # Errors
///
/// Propagates parse and simulation failures.
pub fn run_deck(text: &str) -> Result<String, Error> {
    let deck = parse_deck(text)?;
    let circuit = deck.netlist.compile()?;
    let mut out = String::new();
    let _ = writeln!(out, "* {}", deck.title);

    if deck.analyses.is_empty() {
        let _ = writeln!(out, "* no analysis cards; running .op by default");
    }
    let analyses: Vec<AnalysisCard> = if deck.analyses.is_empty() {
        vec![AnalysisCard::Op]
    } else {
        deck.analyses.clone()
    };

    for card in &analyses {
        match card {
            AnalysisCard::Op => {
                let op = operating_point(&circuit, &DcOptions::default())?;
                let _ = writeln!(out, "\n[op]");
                for node in circuit.node_ids().skip(1) {
                    let _ = writeln!(
                        out,
                        "V({}) = {:.6}",
                        circuit.node_name(node),
                        op.voltage(node)
                    );
                }
            }
            AnalysisCard::Dc {
                source,
                start,
                stop,
                step,
            } => {
                if *step == 0.0 || (stop - start) * step < 0.0 {
                    return Err(Error::InvalidOptions(format!(
                        ".dc step {step} cannot reach {stop} from {start}"
                    )));
                }
                let mut values = Vec::new();
                let mut v = *start;
                let count = ((stop - start) / step).abs().round() as usize;
                for _ in 0..=count {
                    values.push(v);
                    v += step;
                }
                let sols = sweep_vsource(&circuit, source, &values, &DcOptions::default())?;
                let _ = writeln!(out, "\n[dc {source}]");
                let mut header = String::from("sweep");
                for node in circuit.node_ids().skip(1) {
                    let _ = write!(header, ",V({})", circuit.node_name(node));
                }
                let _ = writeln!(out, "{header}");
                for (value, sol) in values.iter().zip(&sols) {
                    let _ = write!(out, "{value:.6}");
                    for node in circuit.node_ids().skip(1) {
                        let _ = write!(out, ",{:.6}", sol.voltage(node));
                    }
                    let _ = writeln!(out);
                }
            }
            AnalysisCard::Tran { t_stop, .. } => {
                let mut opts = TranOptions::new(*t_stop);
                for (node_name, volts) in &deck.initial_conditions {
                    let node = circuit.find_node(node_name)?;
                    opts = opts.with_initial_voltage(node, *volts);
                }
                let res = transient(&circuit, &opts)?;
                let _ = writeln!(out, "\n[tran {t_stop:e}]");
                let mut header = String::from("time");
                for node in circuit.node_ids().skip(1) {
                    let _ = write!(header, ",V({})", circuit.node_name(node));
                }
                let _ = writeln!(out, "{header}");
                for (k, &t) in res.time().iter().enumerate() {
                    let _ = write!(out, "{t:.6e}");
                    for node in circuit.node_ids().skip(1) {
                        let v = res.trace(node).map(|tr| tr[k]).unwrap_or(0.0);
                        let _ = write!(out, ",{v:.6}");
                    }
                    let _ = writeln!(out);
                }
            }
            AnalysisCard::Ac {
                points_per_decade,
                f_start,
                f_stop,
            } => {
                // Use the first voltage source as the excitation, per
                // common single-source AC decks.
                let source = circuit
                    .elements()
                    .find_map(|(name, e)| {
                        matches!(e, crate::netlist::Element::VoltageSource { .. })
                            .then(|| name.to_string())
                    })
                    .ok_or_else(|| {
                        Error::InvalidOptions(".ac needs a voltage source".to_string())
                    })?;
                let freqs = decade_freqs(*f_start, *f_stop, *points_per_decade);
                let res = ac_analysis(&circuit, &AcOptions::new(&source, freqs))?;
                let _ = writeln!(out, "\n[ac {source}]");
                let mut header = String::from("freq");
                for node in circuit.node_ids().skip(1) {
                    let name = circuit.node_name(node);
                    let _ = write!(header, ",mag_db({name}),phase_deg({name})");
                }
                let _ = writeln!(out, "{header}");
                for (k, &f) in res.freqs().iter().enumerate() {
                    let _ = write!(out, "{f:.6e}");
                    for node in circuit.node_ids().skip(1) {
                        let z = res.response(node, k);
                        let _ = write!(out, ",{:.3},{:.2}", z.db(), z.phase_deg());
                    }
                    let _ = writeln!(out);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_op_deck() {
        let report =
            run_deck("divider\nV1 in 0 3.3\nR1 in out 1k\nR2 out 0 2k\n.op\n.end\n").unwrap();
        assert!(report.contains("[op]"));
        assert!(report.contains("V(out) = 2.2"), "{report}");
    }

    #[test]
    fn runs_tran_with_ic() {
        let report = run_deck(
            "rc\nV1 in 0 1.0\nR1 in out 1k\nC1 out 0 1n\n.ic V(out)=0.5\n.tran 10n 3u\n.end\n",
        )
        .unwrap();
        assert!(report.contains("[tran"));
        // First data row starts at the IC value.
        let first_row = report
            .lines()
            .skip_while(|l| !l.starts_with("time"))
            .nth(1)
            .unwrap();
        let v_out: f64 = first_row.split(',').nth(2).unwrap().parse().unwrap();
        assert!((v_out - 0.5).abs() < 1e-6, "{first_row}");
    }

    #[test]
    fn runs_dc_sweep() {
        let report =
            run_deck("sweep\nV1 in 0 0\nR1 in out 1k\nR2 out 0 1k\n.dc V1 0 2 1\n.end\n").unwrap();
        assert!(report.contains("[dc V1]"));
        // Three sweep rows: 0, 1, 2 → out = 0, 0.5, 1.0.
        assert!(report.contains("2.000000,1.000000"), "{report}");
    }

    #[test]
    fn runs_ac_deck() {
        let report =
            run_deck("lowpass\nV1 in 0 0\nR1 in out 1k\nC1 out 0 1n\n.ac dec 10 1k 10meg\n.end\n")
                .unwrap();
        assert!(report.contains("[ac V1]"));
        assert!(report.contains("mag_db(out)"));
    }

    #[test]
    fn defaults_to_op_without_cards() {
        let report = run_deck("bare\nV1 a 0 1\nR1 a 0 1k\n.end\n").unwrap();
        assert!(report.contains("[op]"));
    }

    #[test]
    fn degenerate_dc_step_is_rejected() {
        let deck = "t\nV1 a 0 1\nR1 a 0 1k\n.dc V1 0 2 0\n.end\n";
        assert!(run_deck(deck).is_err());
        let deck = "t\nV1 a 0 1\nR1 a 0 1k\n.dc V1 2 0 0.5\n.end\n";
        assert!(run_deck(deck).is_err());
    }

    #[test]
    fn parse_errors_surface() {
        assert!(run_deck("bad\nR1 a 0\n.end\n").is_err());
    }
}
