//! Error types for circuit construction and simulation.

use std::fmt;

/// Errors produced while building a netlist or running an analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// An element with this name already exists in the netlist.
    DuplicateElement(String),
    /// No element with this name exists in the netlist.
    UnknownElement(String),
    /// No node with this name exists in the netlist.
    UnknownNode(String),
    /// The referenced element does not have the requested terminal
    /// (for example, asking for the base of a resistor).
    InvalidTerminal {
        /// Element whose terminal was requested.
        element: String,
        /// Terminal that does not exist on that element.
        terminal: &'static str,
    },
    /// A component value is non-physical (negative resistance magnitude of
    /// zero, non-finite value, ...).
    InvalidValue {
        /// Element the value belongs to.
        element: String,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The DC operating point did not converge, even after escalating
    /// through the full recovery ladder (damped Newton, gmin stepping,
    /// source stepping, pseudo-transient continuation).
    DcNoConvergence {
        /// Newton iterations spent across every attempt.
        iterations: usize,
        /// Maximum residual at the last iterate.
        residual: f64,
        /// Per-rung account of the recovery ladder, when the failure came
        /// from the operating-point solver (inner solves leave it `None`).
        report: Option<Box<crate::analysis::dc::ConvergenceReport>>,
    },
    /// Transient analysis could not complete a timestep above the minimum
    /// step size.
    TimestepTooSmall {
        /// Simulation time at which the failure occurred, in seconds.
        time: f64,
        /// The step size that still failed, in seconds.
        step: f64,
    },
    /// The MNA matrix is structurally or numerically singular.
    SingularMatrix {
        /// Column at which factorization failed.
        column: usize,
    },
    /// A linear-solver API was used outside its contract (mismatched
    /// dimensions, solving before factoring, ...). Recoverable: sweep
    /// workers and the convergence ladder treat it like any other failed
    /// solve instead of aborting the process.
    SolverContract {
        /// Human-readable description of the violated precondition.
        reason: String,
    },
    /// An option value passed to an analysis is invalid.
    InvalidOptions(String),
    /// Failure while parsing an engineering-notation value such as `"4k"`.
    ParseValue(String),
    /// A budgeted analysis ran out of wall-clock, Newton-iteration, or
    /// timestep budget, or was cooperatively cancelled. Non-retriable:
    /// the recovery ladder, transient salvage, and sweep retry machinery
    /// surface it immediately instead of spending the remaining budget on
    /// escalation or retries.
    DeadlineExceeded {
        /// Analysis that was interrupted.
        phase: crate::analysis::budget::Phase,
        /// Wall-clock time spent in the analysis call before it gave up.
        elapsed: std::time::Duration,
        /// Fraction of the call's work completed, in `[0, 1]` (ladder
        /// rungs finished, simulated-time fraction, sweep points done).
        progress: f64,
    },
    /// Residual certification of a linear solve failed: the backward error
    /// stayed above tolerance even after iterative refinement, so the
    /// solution cannot be trusted. Non-retriable, like
    /// [`Error::DeadlineExceeded`]: the factorization (or the matrix
    /// itself) is numerically rotten, and re-running the same solve —
    /// another ladder rung, a sweep retry — would only reproduce the same
    /// untrusted numbers.
    UntrustedSolution {
        /// Normalized ∞-norm backward error `‖Ax−b‖ / (‖A‖‖x‖+‖b‖)`
        /// after the last refinement step.
        backward_error: f64,
        /// The certification tolerance the solve had to meet
        /// (`SOLVE_BWERR_TOL`, default `1e-8`).
        tolerance: f64,
        /// Iterative-refinement steps spent before giving up.
        refinement_steps: usize,
        /// Hager/Higham 1-norm condition estimate of the factored matrix,
        /// computed on the failure path.
        cond_estimate: f64,
    },
    /// Structural pre-flight diagnostics rejected the circuit before the
    /// first factorization: the assembled MNA pattern has fatal defects
    /// (unknowns no element drives or senses). Produced only by the strict
    /// [`assert_preflight`](crate::analysis::preflight::assert_preflight)
    /// entry point — the DC recovery ladder records the same findings as
    /// diagnostics instead, because its gmin rungs can cure a DC-floating
    /// node.
    PreflightFailed {
        /// One message per fatal finding, naming the offending node or
        /// branch element.
        findings: Vec<String>,
    },
}

impl Error {
    /// Whether this is a budget violation ([`Error::DeadlineExceeded`]),
    /// which retry and salvage layers must treat as non-retriable.
    #[must_use]
    pub fn is_deadline_exceeded(&self) -> bool {
        matches!(self, Error::DeadlineExceeded { .. })
    }

    /// Whether this is a failed residual certification
    /// ([`Error::UntrustedSolution`]), which retry and salvage layers must
    /// treat as non-retriable: repeating the solve reproduces the same
    /// untrusted numbers.
    #[must_use]
    pub fn is_untrusted_solution(&self) -> bool {
        matches!(self, Error::UntrustedSolution { .. })
    }

    /// Whether retry/escalation layers must surface this error immediately
    /// instead of retrying ([`Error::DeadlineExceeded`] or
    /// [`Error::UntrustedSolution`]).
    #[must_use]
    pub fn is_non_retriable(&self) -> bool {
        self.is_deadline_exceeded() || self.is_untrusted_solution()
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DuplicateElement(name) => {
                write!(f, "duplicate element name `{name}`")
            }
            Error::UnknownElement(name) => write!(f, "unknown element `{name}`"),
            Error::UnknownNode(name) => write!(f, "unknown node `{name}`"),
            Error::InvalidTerminal { element, terminal } => {
                write!(f, "element `{element}` has no terminal `{terminal}`")
            }
            Error::InvalidValue { element, reason } => {
                write!(f, "invalid value on `{element}`: {reason}")
            }
            Error::DcNoConvergence {
                iterations,
                residual,
                report,
            } => {
                write!(
                    f,
                    "dc operating point failed to converge after {iterations} iterations \
                     (residual {residual:.3e})"
                )?;
                if let Some(report) = report {
                    write!(f, "; {}", report.summary())?;
                }
                Ok(())
            }
            Error::TimestepTooSmall { time, step } => write!(
                f,
                "transient timestep underflow at t = {time:.6e} s (h = {step:.3e} s)"
            ),
            Error::SingularMatrix { column } => {
                write!(f, "singular MNA matrix at column {column}")
            }
            Error::SolverContract { reason } => {
                write!(f, "solver contract violation: {reason}")
            }
            Error::InvalidOptions(reason) => write!(f, "invalid analysis options: {reason}"),
            Error::ParseValue(text) => write!(f, "cannot parse value `{text}`"),
            Error::DeadlineExceeded {
                phase,
                elapsed,
                progress,
            } => write!(
                f,
                "deadline exceeded in {phase} after {:.3} s ({:.0}% done)",
                elapsed.as_secs_f64(),
                progress * 100.0
            ),
            Error::UntrustedSolution {
                backward_error,
                tolerance,
                refinement_steps,
                cond_estimate,
            } => write!(
                f,
                "untrusted solution: backward error {backward_error:.3e} exceeds tolerance \
                 {tolerance:.1e} after {refinement_steps} refinement step{} \
                 (1-norm condition estimate {cond_estimate:.3e})",
                if *refinement_steps == 1 { "" } else { "s" }
            ),
            Error::PreflightFailed { findings } => {
                write!(
                    f,
                    "pre-flight structural check failed: {}",
                    findings.join("; ")
                )
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = Error::DuplicateElement("R1".to_string());
        let msg = e.to_string();
        assert!(msg.starts_with("duplicate"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Error::UnknownNode("x".into())).is_empty());
    }

    #[test]
    fn untrusted_solution_is_non_retriable() {
        let e = Error::UntrustedSolution {
            backward_error: 1.5e-3,
            tolerance: 1.0e-8,
            refinement_steps: 1,
            cond_estimate: 3.2e17,
        };
        assert!(e.is_untrusted_solution());
        assert!(e.is_non_retriable());
        assert!(!e.is_deadline_exceeded());
        let msg = e.to_string();
        assert!(msg.starts_with("untrusted solution"), "{msg}");
        assert!(msg.contains("1.500e-3"), "{msg}");
        assert!(msg.contains("1 refinement step ("), "{msg}");
        assert!(!msg.ends_with('.'));
    }
}
