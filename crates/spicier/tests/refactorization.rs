//! Property tests of the numeric-refactorization fast path: on a fixed
//! sparsity pattern, `SparseLu::refactor` must reproduce a from-scratch
//! `factor` bit-for-bit (same pivots, same arithmetic order), and the
//! stamp-slot map must reproduce `SparseMatrix::from_triplets` exactly.

use spicier::linalg::sparse::SparseSolver;
use spicier::linalg::{DenseMatrix, Solver, SparseLu, SparseMatrix, StampMap, Triplets};
use xrand::StdRng;

/// A random diagonally dominant stamp sequence: fixed keys, with some
/// duplicate `(row, col)` pairs like real MNA stamps produce.
fn random_pattern(rng: &mut StdRng, n: usize) -> Vec<(usize, usize)> {
    let mut keys = Vec::new();
    for i in 0..n {
        keys.push((i, i));
    }
    for _ in 0..rng.gen_range(n..4 * n) {
        keys.push((rng.gen_range(0..n), rng.gen_range(0..n)));
    }
    keys
}

/// Instantiates values on `keys`: strong diagonal, small off-diagonals,
/// scaled by `round` so every call yields a different numeric matrix on
/// the same pattern.
fn instantiate(rng: &mut StdRng, n: usize, keys: &[(usize, usize)]) -> Triplets {
    let mut t = Triplets::new(n);
    for &(r, c) in keys {
        let v = if r == c {
            rng.gen_range(4.0..10.0) * n as f64
        } else {
            rng.gen_range(-1.0..1.0)
        };
        t.add(r, c, v);
    }
    t
}

fn solve_bits(lu: &SparseLu, n: usize) -> Vec<u64> {
    let mut rhs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    lu.solve(&mut rhs).expect("factored");
    rhs.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn refactor_matches_from_scratch_factor_bitwise() {
    let mut rng = StdRng::seed_from_u64(0xFAC7);
    for _ in 0..32 {
        let n = rng.gen_range(3usize..40);
        let keys = random_pattern(&mut rng, n);
        let mut fast = SparseLu::new();
        fast.factor(&SparseMatrix::from_triplets(&instantiate(
            &mut rng, n, &keys,
        )))
        .expect("diagonally dominant");
        // Perturb the values repeatedly on the same pattern; the fast
        // path must agree with a fresh factorization to the last bit.
        for _ in 0..8 {
            let t = instantiate(&mut rng, n, &keys);
            let a = SparseMatrix::from_triplets(&t);
            fast.refactor(&a).expect("same pattern");
            let mut fresh = SparseLu::new();
            fresh.factor(&a).expect("diagonally dominant");
            assert_eq!(
                solve_bits(&fast, n),
                solve_bits(&fresh, n),
                "refactor diverged from factor on an {n}-unknown system"
            );
        }
        let stats = fast.stats();
        assert_eq!(stats.full_factors, 1, "no fallback expected");
        assert_eq!(stats.refactors, 8);
    }
}

#[test]
fn refactor_agrees_with_dense_oracle() {
    let mut rng = StdRng::seed_from_u64(0x0D0C);
    for _ in 0..16 {
        let n = rng.gen_range(3usize..30);
        let keys = random_pattern(&mut rng, n);
        let mut lu = SparseLu::new();
        for _ in 0..4 {
            let t = instantiate(&mut rng, n, &keys);
            let a = SparseMatrix::from_triplets(&t);
            lu.refactor(&a).expect("diagonally dominant");
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).cos()).collect();
            let mut xs = b.clone();
            lu.solve(&mut xs).unwrap();
            let mut dense = DenseMatrix::from_triplets(&t);
            let perm = dense.lu_factor().unwrap();
            let mut xd = b.clone();
            dense.lu_solve(&perm, &mut xd);
            for (s, d) in xs.iter().zip(&xd) {
                assert!((s - d).abs() < 1e-8 * d.abs().max(1.0), "{s} vs {d}");
            }
        }
    }
}

#[test]
fn refactor_falls_back_when_pivot_order_degrades() {
    // Column 0 pivots on the larger of a[0][0] and a[1][0]; swapping their
    // magnitudes between calls forces a different pivot choice, which the
    // strict recheck must catch by redoing the full factorization.
    let build = |a00: f64, a10: f64| {
        let mut t = Triplets::new(2);
        t.add(0, 0, a00);
        t.add(1, 0, a10);
        t.add(0, 1, 2.0);
        t.add(1, 1, 7.0);
        SparseMatrix::from_triplets(&t)
    };
    let mut lu = SparseLu::new();
    lu.factor(&build(1.0, 5.0)).unwrap();
    assert_eq!(lu.stats().full_factors, 1);

    // Same pivot order: fast path.
    lu.refactor(&build(2.0, 6.0)).unwrap();
    assert_eq!(lu.stats().refactors, 1);
    assert_eq!(lu.stats().full_factors, 1);

    // Degraded: row 0 now dominates column 0.
    lu.refactor(&build(9.0, 0.5)).unwrap();
    assert_eq!(
        lu.stats().full_factors,
        2,
        "pivot degradation must trigger a full factorization"
    );
    // And the result is still correct: solve [9 2; 0.5 7] x = b.
    let mut rhs = vec![13.0, 15.0];
    lu.solve(&mut rhs).unwrap();
    assert!((9.0 * rhs[0] + 2.0 * rhs[1] - 13.0).abs() < 1e-12);
    assert!((0.5 * rhs[0] + 7.0 * rhs[1] - 15.0).abs() < 1e-12);
}

#[test]
fn refactor_handles_random_pivot_swaps() {
    // Randomly scale rows so the pivot argmax flips often; every call must
    // still match a from-scratch factorization bitwise (via fallback when
    // needed).
    let mut rng = StdRng::seed_from_u64(0x51AB5);
    for _ in 0..16 {
        let n = rng.gen_range(3usize..20);
        let keys = random_pattern(&mut rng, n);
        let mut fast = SparseLu::new();
        for _ in 0..6 {
            let mut t = Triplets::new(n);
            for &(r, c) in &keys {
                // Row scaling churns pivot choices without losing rank.
                let scale = if rng.gen_range(0.0..1.0) < 0.3 {
                    50.0
                } else {
                    1.0
                };
                let v = if r == c {
                    rng.gen_range(4.0..10.0) * n as f64
                } else {
                    rng.gen_range(-1.0..1.0)
                } * scale;
                t.add(r, c, v);
            }
            let a = SparseMatrix::from_triplets(&t);
            fast.refactor(&a).expect("full rank");
            let mut fresh = SparseLu::new();
            fresh.factor(&a).expect("full rank");
            assert_eq!(solve_bits(&fast, n), solve_bits(&fresh, n));
        }
    }
}

#[test]
fn stamp_map_scatter_reproduces_from_triplets() {
    let mut rng = StdRng::seed_from_u64(0x57A3);
    for _ in 0..64 {
        let n = rng.gen_range(2usize..30);
        let keys = random_pattern(&mut rng, n);
        let (map, mut cached) = StampMap::build(&instantiate(&mut rng, n, &keys));
        for _ in 0..4 {
            let t = instantiate(&mut rng, n, &keys);
            assert!(map.matches(&t));
            assert!(map.scatter(&t, &mut cached), "matching sequence scatters");
            assert_eq!(cached, SparseMatrix::from_triplets(&t));
        }
    }
}

#[test]
fn stamp_map_rejects_changed_sequence() {
    let mut a = Triplets::new(3);
    a.add(0, 0, 1.0);
    a.add(1, 1, 2.0);
    a.add(2, 2, 3.0);
    let (map, mut cached) = StampMap::build(&a);

    // Different key at one position.
    let mut b = Triplets::new(3);
    b.add(0, 0, 1.0);
    b.add(2, 1, 2.0);
    b.add(2, 2, 3.0);
    assert!(!map.matches(&b));
    assert!(!map.scatter(&b, &mut cached));

    // Extra entry.
    let mut c = a.clone();
    c.add(0, 1, 4.0);
    assert!(!map.scatter(&c, &mut cached));

    // Different dimension.
    let mut d = Triplets::new(4);
    d.add(0, 0, 1.0);
    d.add(1, 1, 2.0);
    d.add(2, 2, 3.0);
    assert!(!map.scatter(&d, &mut cached));
}

#[test]
fn caching_solver_matches_one_shot_solver_across_perturbations() {
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    for _ in 0..16 {
        let n = rng.gen_range(3usize..35);
        let keys = random_pattern(&mut rng, n);
        let mut caching = SparseSolver::default();
        for _ in 0..5 {
            let t = instantiate(&mut rng, n, &keys);
            let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
            let mut x_cached = b.clone();
            caching.solve_in_place(&t, &mut x_cached).unwrap();
            let mut x_fresh = b.clone();
            SparseSolver::default()
                .solve_in_place(&t, &mut x_fresh)
                .unwrap();
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&x_cached), bits(&x_fresh));
        }
        let stats = caching.stats();
        assert_eq!(stats.pattern_rebuilds, 1);
        assert_eq!(stats.full_factors, 1);
        assert_eq!(stats.refactors, 4);
    }
}
