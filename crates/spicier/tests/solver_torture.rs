//! Solver torture tests: pathological circuits that historically crash or
//! hang SPICE-class engines. The contract under test is narrow and
//! absolute — every public analysis entry point either converges or
//! returns a *structured* [`Error`]; nothing here may panic, and failures
//! must carry enough diagnosis (the convergence report, the failure time)
//! to be actionable.

use spicier::analysis::dc::{operating_point, DcOptions};
use spicier::analysis::tran::{transient, transient_salvage, TranOptions};
use spicier::devices::{BjtModel, DiodeModel};
use spicier::netlist::{Netlist, SourceWave};
use spicier::Error;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs `f` and asserts the public API boundary held: any failure came
/// back as an `Err`, not a panic.
fn no_panic<T>(label: &str, f: impl FnOnce() -> Result<T, Error>) -> Result<T, Error> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(_) => panic!("{label}: public analysis API panicked"),
    }
}

#[test]
fn floating_node_is_pinned_not_fatal() {
    // `mid` has no DC path to ground: only a capacitor hangs off it.
    // Without regularization the MNA matrix is singular; the solver's
    // baseline gmin must pin the node to a finite, deterministic value
    // instead of panicking or wandering.
    let mut nl = Netlist::new();
    let top = nl.node("top");
    let mid = nl.node("mid");
    nl.vdc("V1", top, Netlist::GROUND, 1.0).unwrap();
    nl.resistor("R1", top, Netlist::GROUND, 1.0e3).unwrap();
    nl.capacitor("C1", top, mid, 1.0e-12).unwrap();
    let circuit = nl.compile().unwrap();
    let op = no_panic("floating node", || {
        operating_point(&circuit, &DcOptions::default())
    })
    .expect("baseline gmin regularizes the floating node");
    assert!((op.voltage(top) - 1.0).abs() < 1e-6);
    let v_mid = op.voltage(mid);
    assert!(v_mid.is_finite() && v_mid.abs() < 1.0, "v(mid) = {v_mid}");
}

#[test]
fn micro_ohm_source_loop_survives() {
    // Two ideal voltage sources fighting through 1 µΩ of wire: the loop
    // conductance is 1e6 S and the loop current is enormous. The solver
    // must either produce the (well-defined) answer or refuse cleanly.
    let mut nl = Netlist::new();
    let a = nl.node("a");
    let b = nl.node("b");
    nl.vdc("V1", a, Netlist::GROUND, 1.0).unwrap();
    nl.vdc("V2", b, Netlist::GROUND, 1.0001).unwrap();
    nl.resistor("RW", a, b, 1.0e-6).unwrap();
    let circuit = nl.compile().unwrap();
    let op = no_panic("micro-ohm loop", || {
        operating_point(&circuit, &DcOptions::default())
    })
    .expect("a linear loop with finite resistance is solvable");
    assert!((op.voltage(a) - 1.0).abs() < 1e-9);
    assert!((op.voltage(b) - 1.0001).abs() < 1e-9);
}

#[test]
fn twelve_decade_conductance_ratio_converges() {
    // 1 µΩ wire against a 1 MΩ bleed: twelve decades of conductance in
    // one matrix, plus a diode for nonlinearity. This is where naive
    // pivoting or sloppy convergence checks fall over.
    let mut nl = Netlist::new();
    let top = nl.node("top");
    let mid = nl.node("mid");
    let d = nl.node("d");
    nl.vdc("V1", top, Netlist::GROUND, 5.0).unwrap();
    nl.resistor("RWIRE", top, mid, 1.0e-6).unwrap();
    nl.resistor("RBLEED", mid, Netlist::GROUND, 1.0e6).unwrap();
    nl.resistor("RD", mid, d, 1.0e3).unwrap();
    nl.diode("D1", d, Netlist::GROUND, DiodeModel::default())
        .unwrap();
    let circuit = nl.compile().unwrap();
    let op = no_panic("12-decade ratio", || {
        operating_point(&circuit, &DcOptions::default())
    })
    .expect("stiff but well-posed circuit must converge");
    // The 1 µΩ wire drops essentially nothing.
    assert!(
        (op.voltage(mid) - 5.0).abs() < 1e-3,
        "v(mid) = {}",
        op.voltage(mid)
    );
    // The diode clamps its node near a forward drop.
    let vd = op.voltage(d);
    assert!(vd > 0.3 && vd < 1.1, "v(d) = {vd}");
}

#[test]
fn zero_interval_pwl_does_not_panic() {
    // A PWL with a repeated time point (an instantaneous step) and a
    // zero-length final interval. Breakpoint handling must not divide by
    // the interval length or spin on it.
    let mut nl = Netlist::new();
    let inp = nl.node("in");
    let out = nl.node("out");
    nl.vsource(
        "V1",
        inp,
        Netlist::GROUND,
        SourceWave::Pwl(vec![
            (0.0, 0.0),
            (1.0e-9, 0.0),
            (1.0e-9, 1.0), // vertical edge: same time, new value
            (2.0e-9, 1.0),
            (2.0e-9, 1.0), // degenerate duplicate point
        ]),
    )
    .unwrap();
    nl.resistor("R1", inp, out, 1.0e3).unwrap();
    nl.capacitor("C1", out, Netlist::GROUND, 1.0e-12).unwrap();
    let circuit = nl.compile().unwrap();
    let result = no_panic("zero-interval PWL", || {
        transient(&circuit, &TranOptions::new(4.0e-9))
    });
    // Either outcome is acceptable; a panic or hang is not.
    if let Ok(res) = result {
        let last = *res.time().last().unwrap();
        assert!(last >= 4.0e-9 * 0.999, "run stopped early at {last:.3e}");
        let v_out = res.trace(out).unwrap();
        let v_end = *v_out.last().unwrap();
        assert!(
            (v_end - 1.0).abs() < 0.05,
            "RC output should settle to 1 V, got {v_end}"
        );
    }
}

#[test]
fn starved_iteration_budget_escalates_not_panics() {
    // A BJT current mirror with a near-zero iteration budget: plain
    // Newton cannot finish, so the ladder has to climb. Whatever the
    // outcome, the report must account for the attempts.
    let mut nl = Netlist::new();
    let vcc = nl.node("vcc");
    let bias = nl.node("bias");
    let out = nl.node("out");
    nl.vdc("VCC", vcc, Netlist::GROUND, 5.0).unwrap();
    nl.resistor("RB", vcc, bias, 10.0e3).unwrap();
    nl.bjt("Q1", bias, bias, Netlist::GROUND, BjtModel::default())
        .unwrap();
    nl.bjt("Q2", out, bias, Netlist::GROUND, BjtModel::default())
        .unwrap();
    nl.resistor("RC", vcc, out, 1.0e3).unwrap();
    let circuit = nl.compile().unwrap();
    let opts = DcOptions {
        max_iterations: 3,
        ..DcOptions::default()
    };
    match no_panic("starved mirror", || operating_point(&circuit, &opts)) {
        Ok(op) => {
            let report = op.report();
            assert!(report.total_iterations() > 0);
            // 3 iterations is not enough for a cold bipolar mirror.
            assert!(
                report.escalated(),
                "expected ladder escalation: {}",
                report.summary()
            );
        }
        Err(Error::DcNoConvergence { report, .. }) => {
            let report = report.expect("operating_point failures carry the ladder report");
            assert!(
                report.attempts.len() >= 2,
                "ladder must have tried: {}",
                report.summary()
            );
        }
        Err(other) => panic!("unexpected error class: {other:?}"),
    }
}

#[test]
fn transient_with_capacitive_island_stays_finite() {
    // A node reachable only through a femtofarad capacitor: DC pins it
    // via gmin, and the transient must keep every sample finite through
    // both the strict and the salvage entry points.
    let mut nl = Netlist::new();
    let top = nl.node("top");
    let island = nl.node("island");
    nl.vdc("V1", top, Netlist::GROUND, 1.0).unwrap();
    nl.resistor("R1", top, Netlist::GROUND, 50.0).unwrap();
    nl.capacitor("CI", top, island, 1.0e-15).unwrap();
    let circuit = nl.compile().unwrap();
    for (label, salvage) in [("strict", false), ("salvage", true)] {
        let result = no_panic(label, || {
            if salvage {
                transient_salvage(&circuit, &TranOptions::new(1.0e-9))
            } else {
                transient(&circuit, &TranOptions::new(1.0e-9))
            }
        });
        if let Ok(res) = result {
            let v_island = res.trace(island).expect("island is probed");
            assert!(
                v_island.iter().all(|v| v.is_finite()),
                "{label}: island voltage went non-finite"
            );
        }
    }
}

#[test]
fn huge_sweep_of_pathologies_never_panics() {
    // A grab-bag of degenerate one-liners thrown at the whole pipeline.
    // Construction may reject them (structured), compile may reject them
    // (structured), analysis may reject them (structured). No panics.
    type Pathology = Box<dyn Fn() -> Result<(), Error>>;
    let cases: Vec<(&str, Pathology)> = vec![
        (
            "self-loop resistor",
            Box::new(|| {
                let mut nl = Netlist::new();
                let a = nl.node("a");
                nl.resistor("R1", a, a, 1.0e3)?;
                nl.vdc("V1", a, Netlist::GROUND, 1.0)?;
                let c = nl.compile()?;
                operating_point(&c, &DcOptions::default()).map(|_| ())
            }),
        ),
        (
            "source-only circuit",
            Box::new(|| {
                let mut nl = Netlist::new();
                let a = nl.node("a");
                nl.vdc("V1", a, Netlist::GROUND, 1.0)?;
                let c = nl.compile()?;
                operating_point(&c, &DcOptions::default()).map(|_| ())
            }),
        ),
        (
            "current source into open node",
            Box::new(|| {
                let mut nl = Netlist::new();
                let a = nl.node("a");
                nl.idc("I1", Netlist::GROUND, a, 1.0e-3)?;
                let c = nl.compile()?;
                operating_point(&c, &DcOptions::default()).map(|_| ())
            }),
        ),
        (
            "negative resistance rejected",
            Box::new(|| {
                let mut nl = Netlist::new();
                let a = nl.node("a");
                nl.resistor("R1", a, Netlist::GROUND, -10.0)?;
                Ok(())
            }),
        ),
        (
            "NaN capacitance rejected",
            Box::new(|| {
                let mut nl = Netlist::new();
                let a = nl.node("a");
                nl.capacitor("C1", a, Netlist::GROUND, f64::NAN)?;
                Ok(())
            }),
        ),
        (
            "zero-time transient",
            Box::new(|| {
                let mut nl = Netlist::new();
                let a = nl.node("a");
                nl.vdc("V1", a, Netlist::GROUND, 1.0)?;
                nl.resistor("R1", a, Netlist::GROUND, 1.0e3)?;
                let c = nl.compile()?;
                transient(&c, &TranOptions::new(0.0)).map(|_| ())
            }),
        ),
    ];
    for (label, case) in cases {
        let _ = no_panic(label, case);
    }
}

#[test]
fn sparse_lu_solve_contract_violations_are_errors_not_panics() {
    use spicier::linalg::{SparseLu, SparseMatrix, Triplets};

    // Solving before any factorization must be a structured error in every
    // build profile — the recovery ladder catches it like a failed solve.
    let lu = SparseLu::new();
    let mut rhs = vec![1.0, 2.0];
    let err = no_panic("solve without factor", || lu.solve(&mut rhs)).unwrap_err();
    assert!(matches!(err, Error::SolverContract { .. }), "{err:?}");
    assert!(err.to_string().contains("solver contract violation"));

    // A right-hand side of the wrong length after a valid factorization.
    let mut t = Triplets::new(2);
    t.add(0, 0, 2.0);
    t.add(1, 1, 3.0);
    let mut lu = SparseLu::new();
    lu.factor(&SparseMatrix::from_triplets(&t)).unwrap();
    let mut short = vec![1.0];
    let err = no_panic("rhs length mismatch", || lu.solve(&mut short)).unwrap_err();
    assert!(matches!(err, Error::SolverContract { .. }), "{err:?}");
    assert!(err.to_string().contains("2-unknown"), "{err}");

    // The right-sized solve still works afterwards.
    let mut ok = vec![4.0, 9.0];
    lu.solve(&mut ok).unwrap();
    assert!((ok[0] - 2.0).abs() < 1e-12 && (ok[1] - 3.0).abs() < 1e-12);
}
