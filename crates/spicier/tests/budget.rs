//! Budget edge cases: deadlines and iteration caps firing inside every
//! DC ladder rung, between transient steps, across sweeps, and in the
//! AC/noise analyses — plus the chaos-injection harness that proves a
//! hung or NaN-poisoned Newton loop cannot escape the budget layer.

use spicier::analysis::ac::{ac_analysis, AcOptions};
use spicier::analysis::noise::{noise_analysis, NoiseOptions};
use spicier::analysis::sweep::{par_try_map, SweepFailure, TryMapOptions};
use spicier::analysis::tran::{transient, transient_salvage, TranOptions};
use spicier::analysis::{operating_point, sweep_vsource, DcOptions, Phase, RunBudget};
use spicier::devices::DiodeModel;
use spicier::netlist::Netlist;
use spicier::{chaos, CancelToken, Circuit, Error};
use std::time::Duration;

/// Nonlinear two-node circuit (source, resistor, diode): converges under
/// plain Newton, but needs several iterations.
fn diode_circuit() -> Circuit {
    let mut nl = Netlist::new();
    let a = nl.node("a");
    let d = nl.node("d");
    nl.vdc("V1", a, Netlist::GROUND, 3.3).unwrap();
    nl.resistor("R1", a, d, 6.0e3).unwrap();
    nl.diode("D1", d, Netlist::GROUND, DiodeModel::new())
        .unwrap();
    nl.compile().unwrap()
}

fn rc_circuit() -> Circuit {
    let mut nl = Netlist::new();
    let a = nl.node("a");
    let b = nl.node("b");
    nl.vdc("V1", a, Netlist::GROUND, 1.0).unwrap();
    nl.resistor("R1", a, b, 1.0e3).unwrap();
    nl.capacitor("C1", b, Netlist::GROUND, 1.0e-9).unwrap();
    nl.compile().unwrap()
}

#[test]
fn zero_deadline_fails_operating_point_before_any_work() {
    let c = diode_circuit();
    let opts = DcOptions {
        budget: RunBudget::unlimited().with_deadline(Duration::ZERO),
        ..DcOptions::default()
    };
    let err = operating_point(&c, &opts).unwrap_err();
    match err {
        Error::DeadlineExceeded {
            phase, progress, ..
        } => {
            assert_eq!(phase, Phase::DcOperatingPoint);
            assert_eq!(progress, 0.0);
        }
        other => panic!("expected DeadlineExceeded, got {other}"),
    }
}

#[test]
fn pre_cancelled_token_fails_operating_point() {
    let c = diode_circuit();
    let cancel = CancelToken::new();
    cancel.cancel();
    let opts = DcOptions {
        budget: RunBudget::unlimited().with_cancel(cancel),
        ..DcOptions::default()
    };
    assert!(operating_point(&c, &opts)
        .unwrap_err()
        .is_deadline_exceeded());
}

/// Drives the iteration cap into every one of the five ladder rungs: a
/// hang-chaos run never converges, so an unlimited run records all five
/// rungs' iteration counts; a cap landing strictly inside rung `k` must
/// then fire there, which the rung-based `progress` fraction exposes.
#[test]
fn newton_iteration_cap_fires_inside_each_ladder_rung() {
    let c = diode_circuit();
    let base = DcOptions {
        max_iterations: 5,
        ..DcOptions::default()
    };
    // Unlimited hang run: the whole ladder fails, reporting per-rung cost.
    let report = chaos::with_hang(|| match operating_point(&c, &base).unwrap_err() {
        Error::DcNoConvergence {
            report: Some(report),
            ..
        } => *report,
        other => panic!("expected ladder exhaustion, got {other}"),
    });
    assert_eq!(report.attempts.len(), 5, "{}", report.summary());
    assert!(report.succeeded.is_none());

    let mut spent_before = 0usize;
    for (k, attempt) in report.attempts.iter().enumerate() {
        assert!(attempt.iterations >= 2, "rung {k} too cheap to cap inside");
        // A cap one iteration into rung k fires inside rung k.
        let opts = DcOptions {
            budget: RunBudget::unlimited().with_max_newton_iterations(spent_before + 1),
            ..base.clone()
        };
        let err = chaos::with_hang(|| operating_point(&c, &opts).unwrap_err());
        match err {
            Error::DeadlineExceeded { progress, .. } => {
                let expected = k as f64 / 5.0;
                assert!(
                    (progress - expected).abs() < 1e-9,
                    "cap {} fired at progress {progress}, expected rung {k} ({expected})",
                    spent_before + 1
                );
            }
            other => panic!("cap {} gave {other}", spent_before + 1),
        }
        spent_before += attempt.iterations;
    }
}

#[test]
fn wall_clock_deadline_bounds_a_hung_newton_loop() {
    let c = diode_circuit();
    let opts = DcOptions {
        budget: RunBudget::unlimited().with_deadline(Duration::from_millis(50)),
        ..DcOptions::default()
    };
    let err = chaos::with_hang(|| operating_point(&c, &opts).unwrap_err());
    match err {
        Error::DeadlineExceeded { phase, elapsed, .. } => {
            assert_eq!(phase, Phase::DcOperatingPoint);
            assert!(elapsed >= Duration::from_millis(50), "{elapsed:?}");
            assert!(elapsed < Duration::from_secs(10), "{elapsed:?}");
        }
        other => panic!("expected DeadlineExceeded, got {other}"),
    }
}

#[test]
fn nan_stamp_is_rejected_not_silently_accepted() {
    // Without the non-finite iterate guard, `NaN > tol` being false would
    // make the NaN-poisoned solve *converge*. It must fail instead.
    let c = diode_circuit();
    let err = chaos::with_nan_stamp(|| operating_point(&c, &DcOptions::default()).unwrap_err());
    assert!(
        matches!(err, Error::DcNoConvergence { .. }),
        "NaN-stamped solve must exhaust the ladder, got {err}"
    );
}

#[test]
fn transient_timestep_cap_salvages_the_prefix() {
    let c = rc_circuit();
    let mut opts = TranOptions::new(1.0e-6);
    opts.budget = RunBudget::unlimited().with_max_timesteps(5);
    let res = transient_salvage(&c, &opts).unwrap();
    let fail = res.failure().expect("cap must interrupt the run");
    assert!(fail.error.is_deadline_exceeded(), "{}", fail.error);
    assert!((0.0..1.0).contains(&fail.progress));
    // The salvaged prefix is intact: exactly the accepted steps plus t=0,
    // and no more attempts than the cap allowed.
    assert_eq!(res.time().len(), res.accepted_steps() + 1);
    assert!(res.accepted_steps() + res.rejected_steps() <= 5);
    assert!(res.accepted_steps() >= 1, "prefix was discarded");
    // The strict wrapper surfaces the same error instead of a partial run.
    assert!(transient(&c, &opts).unwrap_err().is_deadline_exceeded());
}

#[test]
fn transient_newton_iteration_budget_salvages_midrun() {
    // The cap fires *inside* a step's Newton solve (not at the loop top):
    // the prefix must still come back, with the deadline as the failure.
    let c = rc_circuit();
    let mut opts = TranOptions::new(1.0e-6);
    opts.budget = RunBudget::unlimited().with_max_newton_iterations(40);
    let res = transient_salvage(&c, &opts).unwrap();
    let fail = res.failure().expect("iteration budget must interrupt");
    assert!(fail.error.is_deadline_exceeded());
    match &fail.error {
        Error::DeadlineExceeded { phase, .. } => assert_eq!(*phase, Phase::Transient),
        other => panic!("{other}"),
    }
    assert!(res.accepted_steps() >= 1);
    assert_eq!(res.time().len(), res.accepted_steps() + 1);
}

#[test]
fn transient_zero_deadline_cannot_start() {
    let c = rc_circuit();
    let mut opts = TranOptions::new(1.0e-6);
    opts.budget = RunBudget::unlimited().with_deadline(Duration::ZERO);
    assert!(transient_salvage(&c, &opts)
        .unwrap_err()
        .is_deadline_exceeded());
}

#[test]
fn sweep_vsource_budget_reports_phase_and_progress() {
    let c = diode_circuit();
    let values: Vec<f64> = (0..16).map(|i| i as f64 * 0.2).collect();
    // Generous enough for a few points, not the whole sweep.
    let opts = DcOptions {
        budget: RunBudget::unlimited().with_max_newton_iterations(30),
        ..DcOptions::default()
    };
    let err = sweep_vsource(&c, "V1", &values, &opts).unwrap_err();
    match err {
        Error::DeadlineExceeded {
            phase, progress, ..
        } => {
            assert_eq!(phase, Phase::DcSweep);
            assert!(
                progress > 0.0 && progress < 1.0,
                "expected mid-sweep interruption, got progress {progress}"
            );
        }
        other => panic!("expected DeadlineExceeded, got {other}"),
    }
    // Unlimited budget completes the same sweep.
    assert_eq!(
        sweep_vsource(&c, "V1", &values, &DcOptions::default())
            .unwrap()
            .len(),
        values.len()
    );
}

#[test]
fn ac_and_noise_respect_their_budgets() {
    let mut nl = Netlist::new();
    let a = nl.node("a");
    let b = nl.node("b");
    nl.vdc("V1", a, Netlist::GROUND, 1.0).unwrap();
    nl.resistor("R1", a, b, 1.0e3).unwrap();
    nl.capacitor("C1", b, Netlist::GROUND, 1.0e-9).unwrap();
    let c = nl.compile().unwrap();
    let freqs: Vec<f64> = vec![1.0e3, 1.0e4, 1.0e5];
    let mut ac = AcOptions::new("V1", freqs.clone());
    ac.budget = RunBudget::unlimited().with_deadline(Duration::ZERO);
    match ac_analysis(&c, &ac).unwrap_err() {
        Error::DeadlineExceeded { phase, .. } => assert_eq!(phase, Phase::Ac),
        other => panic!("{other}"),
    }
    let mut noise = NoiseOptions::new(b, freqs);
    noise.budget = RunBudget::unlimited().with_deadline(Duration::ZERO);
    match noise_analysis(&c, &noise).unwrap_err() {
        Error::DeadlineExceeded { phase, .. } => assert_eq!(phase, Phase::Noise),
        other => panic!("{other}"),
    }
}

/// End-to-end corner isolation: one hung corner in a real sweep times out
/// with its phase and elapsed time; every healthy corner's value is
/// identical to a chaos-free run of the same sweep.
#[test]
fn hung_corner_is_isolated_and_healthy_corners_match_clean_run() {
    let solve = |&v: &f64| -> Result<f64, Error> {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let d = nl.node("d");
        nl.vdc("V1", a, Netlist::GROUND, v).unwrap();
        nl.resistor("R1", a, d, 6.0e3).unwrap();
        nl.diode("D1", d, Netlist::GROUND, DiodeModel::new())
            .unwrap();
        let c = nl.compile().unwrap();
        let op = operating_point(&c, &DcOptions::default())?;
        Ok(op.voltage(d))
    };
    let values: Vec<f64> = vec![1.0, 2.0, 3.0, 4.0];
    let clean_opts = TryMapOptions {
        max_workers: Some(1),
        ..TryMapOptions::default()
    };
    let (clean, clean_report) = par_try_map(values.clone(), &clean_opts, solve);
    assert!(clean_report.all_ok());

    const HUNG: usize = 2;
    let chaos_opts = TryMapOptions {
        corner_deadline: Some(Duration::from_millis(150)),
        max_workers: Some(1),
        ..TryMapOptions::default()
    };
    let (chaotic, report) = par_try_map(values, &chaos_opts, |v: &f64| {
        if *v == 3.0 {
            chaos::with_hang(|| solve(v))
        } else {
            solve(v)
        }
    });
    assert_eq!(report.failures.len(), 1, "{}", report.summary());
    let fail = &report.failures[0];
    assert_eq!(fail.index, HUNG);
    match &fail.failure {
        SweepFailure::TimedOut { elapsed, error } => {
            assert!(*elapsed >= Duration::from_millis(150));
            assert!(matches!(
                error,
                Error::DeadlineExceeded {
                    phase: Phase::DcOperatingPoint,
                    ..
                }
            ));
        }
        other => panic!("expected TimedOut, got {other}"),
    }
    assert!(
        report.summary().contains("1 timed out"),
        "{}",
        report.summary()
    );
    for (i, (chaos_slot, clean_slot)) in chaotic.iter().zip(&clean).enumerate() {
        if i == HUNG {
            assert!(chaos_slot.is_none());
        } else {
            assert_eq!(
                chaos_slot, clean_slot,
                "corner {i} value drifted under chaos"
            );
        }
    }
}
