//! Property tests of the structure-aware solver paths (seeded,
//! deterministic — see `xrand`).
//!
//! Three families:
//!
//! * the fill-reducing-ordered path (`force_ordering`) must produce the
//!   same certified answers as the natural-order path on randomized
//!   MNA-shaped systems, across pattern rebuilds and value-only
//!   refactorizations;
//! * the bordered-block-diagonal path (`force_bbd`) must agree with the
//!   plain LU path on the CML stage-chain shape it is built for, and
//!   must fall back transparently — still certified — when its solve is
//!   sabotaged;
//! * the `CHAOS_PERTURB_LU` drill on the *permuted* path: a corrupted
//!   factorization behind a fill-reducing permutation must still surface
//!   [`spicier::Error::UntrustedSolution`], and a pivot flip under a
//!   cached permuted pattern must take the refactor fallback and still
//!   certify.

use spicier::chaos::with_perturb_lu;
use spicier::linalg::sparse::SparseSolver;
use spicier::linalg::verify::{backward_error, bwerr_tol, inf_norm};
use spicier::linalg::{Solver, SparseMatrix, Triplets};
use xrand::StdRng;

/// A random connected conductance network on `n` unknowns (chain backbone
/// plus random extra branches); same construction as `verified_solves`.
fn random_edges(rng: &mut StdRng, n: usize) -> Vec<(usize, usize)> {
    let mut edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
    for _ in 0..rng.gen_range(n..3 * n) {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i != j {
            edges.push((i, j));
        }
    }
    edges
}

/// Stamps `edges` as two-terminal conductances plus a per-node ground
/// leak: symmetric, strictly diagonally dominant, well-conditioned — and
/// with a stamp sequence that depends only on the edge list, so re-stamping
/// the same edges with fresh values exercises the cached-pattern
/// (scatter + refactor) fast path of every solver variant.
fn stamp_network(rng: &mut StdRng, n: usize, edges: &[(usize, usize)]) -> Triplets {
    let mut t = Triplets::new(n);
    for i in 0..n {
        t.add(i, i, rng.gen_range(1.0e-4..1.0e-2));
    }
    for &(i, j) in edges {
        let g = rng.gen_range(1.0e-3..1.0e-1);
        t.add(i, i, g);
        t.add(j, j, g);
        t.add(i, j, -g);
        t.add(j, i, -g);
    }
    t
}

/// The CML generator shape: `stages` identical 3-node channel-connected
/// stages, each coupled to a shared rail node 0 — repeated blocks hanging
/// off one border hub, with randomized conductances (diagonally dominant
/// by construction). Fixed `stages` gives a fixed stamp sequence.
fn stage_chain(rng: &mut StdRng, stages: usize) -> Triplets {
    let n = 1 + 3 * stages;
    let mut t = Triplets::new(n);
    t.add(0, 0, rng.gen_range(0.5..2.0));
    for s in 0..stages {
        let base = 1 + 3 * s;
        for k in 0..3 {
            let g = rng.gen_range(0.05..0.5);
            t.add(base + k, base + k, rng.gen_range(2.0..8.0) + g);
            t.add(0, base + k, -g);
            t.add(base + k, 0, -g);
            t.add(0, 0, g);
        }
        let g01 = rng.gen_range(0.2..1.5);
        let g12 = rng.gen_range(0.2..1.5);
        t.add(base, base + 1, -g01);
        t.add(base + 1, base, -g01);
        t.add(base + 1, base + 2, -g12);
        t.add(base + 2, base + 1, -g12);
    }
    t
}

fn random_rhs(rng: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(-1.0e-2..1.0e-2)).collect()
}

/// Measured backward error of `x` against the system assembled from `t`.
fn measured_bwerr(t: &Triplets, x: &[f64], b: &[f64]) -> f64 {
    let a = SparseMatrix::from_triplets(t);
    let ax = a.mul_vec(x);
    let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
    let (norm_a_inf, _) = a.norms();
    backward_error(inf_norm(&r), norm_a_inf, inf_norm(x), inf_norm(b))
}

/// Relative ∞-norm disagreement between two solutions.
fn rel_diff(a: &[f64], b: &[f64]) -> f64 {
    let scale = inf_norm(a).max(inf_norm(b)).max(f64::MIN_POSITIVE);
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max)
        / scale
}

fn natural_order_solver() -> SparseSolver {
    let mut s = SparseSolver::default();
    s.force_ordering(false);
    s.force_bbd(false);
    s
}

fn ordered_solver() -> SparseSolver {
    let mut s = SparseSolver::default();
    s.force_ordering(true);
    s.force_bbd(false);
    s
}

fn bbd_solver() -> SparseSolver {
    let mut s = SparseSolver::default();
    s.force_bbd(true);
    s
}

/// The ordered (fill-reducing permuted) path must certify every solve of
/// a random MNA-shaped system and agree with the natural-order path, on
/// the first factorization and across value-only refactorizations of the
/// same cached pattern.
#[test]
fn ordered_path_agrees_with_natural_order_within_certified_error() {
    let mut rng = StdRng::seed_from_u64(0x0de4ed);
    let tol = bwerr_tol();
    for n in [30, 90, 250] {
        let edges = random_edges(&mut rng, n);
        let mut plain = natural_order_solver();
        let mut ordered = ordered_solver();
        // Round 0 builds the pattern (and the permutation); later rounds
        // must ride the permuted scatter + refactor fast path.
        for round in 0..4 {
            let t = stamp_network(&mut rng, n, &edges);
            let b = random_rhs(&mut rng, n);

            let mut xp = b.clone();
            plain.solve_in_place(&t, &mut xp).unwrap();
            assert!(!plain.ordering_active(), "forced off at n={n}");

            let mut xo = b.clone();
            ordered.solve_in_place(&t, &mut xo).unwrap();
            assert!(ordered.ordering_active(), "forced on at n={n}");
            assert!(
                ordered.last_quality().backward_error <= tol,
                "ordered certification failed at n={n} round={round}: {:?}",
                ordered.last_quality()
            );

            assert!(
                measured_bwerr(&t, &xo, &b) <= tol,
                "ordered residual n={n} round={round}"
            );
            let diff = rel_diff(&xp, &xo);
            assert!(
                diff < 1.0e-8,
                "ordered vs natural disagree at n={n} round={round}: {diff:.3e}"
            );
        }
        // All later rounds reused the cached permuted pattern.
        assert_eq!(ordered.stats().pattern_rebuilds, 1, "n={n}");
    }
}

/// The BBD path must detect the stage-chain partition, certify every
/// solve, and agree with the natural-order path across value-only
/// refactorizations (fresh conductances, fixed topology — the Newton
/// shape the block-factor pool is built for).
#[test]
fn bbd_path_agrees_with_natural_order_on_stage_chains() {
    let mut rng = StdRng::seed_from_u64(0xb1ded);
    let tol = bwerr_tol();
    for stages in [12, 40] {
        let n = 1 + 3 * stages;
        let mut plain = natural_order_solver();
        let mut bbd = bbd_solver();
        for round in 0..4 {
            // Same `stages` → same stamp sequence; fresh values each round.
            let t = stage_chain(&mut rng, stages);
            let b = random_rhs(&mut rng, n);

            let mut xp = b.clone();
            plain.solve_in_place(&t, &mut xp).unwrap();

            let mut xb = b.clone();
            bbd.solve_in_place(&t, &mut xb).unwrap();
            assert!(
                bbd.bbd_active(),
                "stage chain must partition at stages={stages}"
            );
            let stats = bbd.bbd_stats().expect("active partition has stats");
            assert!(stats.blocks >= 2, "{stats:?}");
            assert!(stats.border >= 1, "{stats:?}");
            assert!(
                bbd.last_quality().backward_error <= tol,
                "BBD certification failed at stages={stages} round={round}: {:?}",
                bbd.last_quality()
            );

            assert!(
                measured_bwerr(&t, &xb, &b) <= tol,
                "BBD residual stages={stages} round={round}"
            );
            let diff = rel_diff(&xp, &xb);
            assert!(
                diff < 1.0e-8,
                "BBD vs natural disagree at stages={stages} round={round}: {diff:.3e}"
            );
        }
        assert_eq!(bbd.bbd_fallbacks(), 0, "clean solves must not fall back");
    }
}

/// `CHAOS_PERTURB_LU` on the permuted path: corrupting a pivot of the
/// fill-reduced factorization must surface `UntrustedSolution` — the
/// permutation must not hide the corruption from the certifier.
#[test]
fn chaos_perturb_lu_is_caught_on_the_permuted_path() {
    let mut rng = StdRng::seed_from_u64(0xcafe0d);
    for n in [40, 150] {
        let edges = random_edges(&mut rng, n);
        let t = stamp_network(&mut rng, n, &edges);
        let b = random_rhs(&mut rng, n);
        let mut solver = ordered_solver();
        let err = with_perturb_lu(|| solver.solve_in_place(&t, &mut b.clone()))
            .expect_err("corrupted permuted factorization must not certify");
        assert!(
            err.is_untrusted_solution(),
            "ordered path at n={n}: expected UntrustedSolution, got {err}"
        );
        assert!(err.is_non_retriable(), "n={n}");
        assert!(solver.ordering_active(), "drill must run the permuted path");
        // The drill must not poison the solver: the next clean solve on
        // the same cached pattern certifies again.
        let mut x = b.clone();
        solver.solve_in_place(&t, &mut x).unwrap();
        assert!(solver.last_quality().backward_error <= bwerr_tol());
    }
}

/// `CHAOS_PERTURB_LU` against the BBD path: the corrupted block/Schur
/// factorization fails certification, the solver falls back to plain LU
/// (which the drill also corrupts, so the whole solve surfaces
/// `UntrustedSolution`) — and once the chaos clears, the fallback LU path
/// keeps producing certified answers.
#[test]
fn chaos_perturb_lu_on_bbd_falls_back_and_is_caught() {
    let mut rng = StdRng::seed_from_u64(0xbbdbad);
    let stages = 12;
    let n = 1 + 3 * stages;
    let t = stage_chain(&mut rng, stages);
    let b = random_rhs(&mut rng, n);

    let mut solver = bbd_solver();
    // Clean solve first: the partition must be live before the drill.
    let mut x = b.clone();
    solver.solve_in_place(&t, &mut x).unwrap();
    assert!(solver.bbd_active());

    let err = with_perturb_lu(|| solver.solve_in_place(&t, &mut b.clone()))
        .expect_err("corrupted BBD + corrupted fallback LU must not certify");
    assert!(err.is_untrusted_solution(), "got: {err}");
    assert!(
        solver.bbd_fallbacks() >= 1,
        "the BBD failure must be counted as a fallback"
    );
    assert!(
        !solver.bbd_active(),
        "a failed BBD solve disarms the partition until the next rebuild"
    );

    // Chaos off: the fallback LU path recovers with a certified answer
    // that matches a natural-order reference.
    let mut xr = b.clone();
    solver.solve_in_place(&t, &mut xr).unwrap();
    assert!(solver.last_quality().backward_error <= bwerr_tol());
    let mut x_ref = b.clone();
    natural_order_solver()
        .solve_in_place(&t, &mut x_ref)
        .unwrap();
    assert!(rel_diff(&xr, &x_ref) < 1.0e-8);
}

/// Pivot-fallback drill on the permuted path: re-stamping a cached
/// pattern with values that flip the partial-pivoting winner must abandon
/// the replay (counted in `pivot_fallbacks`), re-factor from scratch, and
/// still return the exact certified answer.
///
/// The value sets are chosen symmetric with equal off-diagonals, so the
/// flip survives *any* symmetric permutation the ordering may pick.
#[test]
fn pivot_flip_under_cached_permuted_pattern_takes_the_fallback() {
    let mut t1 = Triplets::new(2);
    t1.add(0, 0, 1.0);
    t1.add(1, 0, 10.0);
    t1.add(0, 1, 10.0);
    t1.add(1, 1, 1.0);
    // Same stamp sequence, diagonals and off-diagonals exchanged: the
    // column-0 pivot winner moves between rows.
    let mut t2 = Triplets::new(2);
    t2.add(0, 0, 10.0);
    t2.add(1, 0, 1.0);
    t2.add(0, 1, 1.0);
    t2.add(1, 1, 10.0);

    let mut solver = ordered_solver();
    // b = A1·[1, 1]ᵀ, so the exact answer is all-ones.
    let mut x1 = vec![11.0, 11.0];
    solver.solve_in_place(&t1, &mut x1).unwrap();
    assert!(solver.ordering_active());
    assert_eq!(solver.stats().pivot_fallbacks, 0);
    assert!((x1[0] - 1.0).abs() < 1e-12 && (x1[1] - 1.0).abs() < 1e-12);

    let mut x2 = vec![11.0, 11.0];
    solver.solve_in_place(&t2, &mut x2).unwrap();
    let stats = solver.stats();
    assert_eq!(
        stats.pattern_rebuilds, 1,
        "second solve must reuse the cached permuted pattern"
    );
    assert_eq!(
        stats.pivot_fallbacks, 1,
        "the flipped pivot winner must abandon the cached replay"
    );
    assert!((x2[0] - 1.0).abs() < 1e-12 && (x2[1] - 1.0).abs() < 1e-12);
    assert!(solver.last_quality().backward_error <= bwerr_tol());
}
