//! Property-based tests of the simulator over randomly generated circuits.

use proptest::prelude::*;
use spicier::analysis::dc::{operating_point, DcOptions};
use spicier::analysis::tran::{transient, TranOptions};
use spicier::netlist::{Element, Netlist, SourceWave};
use spicier::spice::{parse_deck, write_deck};

/// A random linear resistive network: a chain backbone (guaranteeing
/// connectivity to ground) plus random extra resistors and two sources.
fn arb_resistive_network() -> impl Strategy<Value = (Netlist, f64, f64)> {
    let extra = proptest::collection::vec((0u8..8, 0u8..8, 100.0f64..10_000.0), 0..12);
    (
        3usize..8,
        extra,
        proptest::collection::vec(100.0f64..10_000.0, 8),
        -5.0f64..5.0,
        -5.0f64..5.0,
    )
        .prop_map(|(n, extra, chain_r, v1, v2)| {
            let mut nl = Netlist::new();
            let nodes: Vec<_> = (0..n).map(|i| nl.node(&format!("n{i}"))).collect();
            // Backbone to ground.
            nl.resistor("RB0", nodes[0], Netlist::GROUND, chain_r[0])
                .unwrap();
            for i in 1..n {
                nl.resistor(&format!("RB{i}"), nodes[i - 1], nodes[i], chain_r[i % 8])
                    .unwrap();
            }
            for (k, (a, b, r)) in extra.into_iter().enumerate() {
                let na = nodes[a as usize % n];
                let nb = nodes[b as usize % n];
                if na != nb {
                    nl.resistor(&format!("RX{k}"), na, nb, r).unwrap();
                }
            }
            nl.vdc("V1", nodes[0], Netlist::GROUND, v1).unwrap();
            nl.idc("I1", Netlist::GROUND, nodes[n - 1], v2 * 1.0e-4)
                .unwrap();
            (nl, v1, v2 * 1.0e-4)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Superposition holds on linear networks: the response to both
    /// sources equals the sum of the responses to each source alone.
    #[test]
    fn dc_superposition_on_linear_networks((nl, v1, i1) in arb_resistive_network()) {
        let solve = |scale_v: f64, scale_i: f64| -> Vec<f64> {
            let mut copy = nl.clone();
            copy.remove_element("V1").unwrap();
            copy.remove_element("I1").unwrap();
            let p0 = copy.find_node("n0").unwrap();
            let last = (0..).take_while(|k| copy.find_node(&format!("n{k}")).is_ok()).count() - 1;
            let pn = copy.find_node(&format!("n{last}")).unwrap();
            copy.vdc("V1", p0, Netlist::GROUND, v1 * scale_v).unwrap();
            copy.idc("I1", Netlist::GROUND, pn, i1 * scale_i).unwrap();
            let circuit = copy.compile().unwrap();
            let op = operating_point(&circuit, &DcOptions::default()).unwrap();
            circuit.node_ids().map(|id| op.voltage(id)).collect()
        };
        let both = solve(1.0, 1.0);
        let only_v = solve(1.0, 0.0);
        let only_i = solve(0.0, 1.0);
        for ((b, v), i) in both.iter().zip(&only_v).zip(&only_i) {
            prop_assert!((b - (v + i)).abs() < 1e-6 * b.abs().max(1.0),
                "superposition violated: {b} vs {v} + {i}");
        }
    }

    /// A transient run whose sources are all DC must stay at the operating
    /// point (steady state is a fixed point of the integrator).
    #[test]
    fn dc_sources_are_a_transient_fixed_point((nl, _, _) in arb_resistive_network(),
                                              cap_pf in 1.0f64..100.0) {
        let mut nl = nl.clone();
        let a = nl.find_node("n1").unwrap();
        nl.capacitor("CP", a, Netlist::GROUND, cap_pf * 1e-12).unwrap();
        let circuit = nl.compile().unwrap();
        let op = operating_point(&circuit, &DcOptions::default()).unwrap();
        let res = transient(&circuit, &TranOptions::new(1.0e-8)).unwrap();
        for node in circuit.node_ids() {
            let trace = res.trace(node).unwrap();
            let expected = op.voltage(node);
            for &v in trace {
                prop_assert!((v - expected).abs() < 1e-6 + 1e-6 * expected.abs(),
                    "node drifted from {expected} to {v}");
            }
        }
    }

    /// SPICE export → import preserves element counts, kinds and values.
    #[test]
    fn spice_round_trip_preserves_elements((nl, _, _) in arb_resistive_network()) {
        let deck = write_deck(&nl, "proptest round trip");
        let parsed = parse_deck(&deck).unwrap();
        prop_assert_eq!(parsed.netlist.element_count(), nl.element_count());
        for (name, element) in nl.elements() {
            // Exported names keep their type prefix (they already start
            // with R/V/I here).
            let round = parsed.netlist.element(name).unwrap();
            match (element, round) {
                (Element::Resistor { value: a, .. }, Element::Resistor { value: b, .. }) => {
                    prop_assert!((a - b).abs() < 1e-9 * a.abs());
                }
                (Element::VoltageSource { wave: SourceWave::Dc(a), .. },
                 Element::VoltageSource { wave: SourceWave::Dc(b), .. }) => {
                    prop_assert!((a - b).abs() < 1e-12 + 1e-9 * a.abs());
                }
                (Element::CurrentSource { wave: SourceWave::Dc(a), .. },
                 Element::CurrentSource { wave: SourceWave::Dc(b), .. }) => {
                    prop_assert!((a - b).abs() < 1e-12 + 1e-9 * a.abs());
                }
                (a, b) => prop_assert!(false, "kind changed: {a:?} vs {b:?}"),
            }
        }
    }

    /// Scaling every source by k scales every node voltage by k
    /// (homogeneity of linear networks).
    #[test]
    fn dc_homogeneity((nl, v1, i1) in arb_resistive_network(), k in 0.1f64..10.0) {
        let solve = |scale: f64| -> Vec<f64> {
            let mut copy = nl.clone();
            copy.remove_element("V1").unwrap();
            copy.remove_element("I1").unwrap();
            let p0 = copy.find_node("n0").unwrap();
            let last = (0..).take_while(|q| copy.find_node(&format!("n{q}")).is_ok()).count() - 1;
            let pn = copy.find_node(&format!("n{last}")).unwrap();
            copy.vdc("V1", p0, Netlist::GROUND, v1 * scale).unwrap();
            copy.idc("I1", Netlist::GROUND, pn, i1 * scale).unwrap();
            let circuit = copy.compile().unwrap();
            let op = operating_point(&circuit, &DcOptions::default()).unwrap();
            circuit.node_ids().map(|id| op.voltage(id)).collect()
        };
        let base = solve(1.0);
        let scaled = solve(k);
        for (b, s) in base.iter().zip(&scaled) {
            prop_assert!((s - k * b).abs() < 1e-6 * (1.0 + s.abs()),
                "homogeneity violated: {s} vs {k}·{b}");
        }
    }
}
