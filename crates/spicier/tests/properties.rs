//! Randomized property tests of the simulator over generated circuits
//! (seeded, deterministic — see `xrand`).

use spicier::analysis::dc::{operating_point, DcOptions};
use spicier::analysis::tran::{transient, TranOptions};
use spicier::netlist::{Element, Netlist, SourceWave};
use spicier::spice::{parse_deck, write_deck};
use xrand::StdRng;

/// A random linear resistive network: a chain backbone (guaranteeing
/// connectivity to ground) plus random extra resistors and two sources.
/// Returns the netlist plus the two source values.
fn random_resistive_network(rng: &mut StdRng) -> (Netlist, f64, f64) {
    let n = rng.gen_range(3usize..8);
    let mut nl = Netlist::new();
    let nodes: Vec<_> = (0..n).map(|i| nl.node(&format!("n{i}"))).collect();
    // Backbone to ground.
    nl.resistor(
        "RB0",
        nodes[0],
        Netlist::GROUND,
        rng.gen_range(100.0..10_000.0),
    )
    .unwrap();
    for i in 1..n {
        nl.resistor(
            &format!("RB{i}"),
            nodes[i - 1],
            nodes[i],
            rng.gen_range(100.0..10_000.0),
        )
        .unwrap();
    }
    let extra = rng.gen_range(0usize..12);
    for k in 0..extra {
        let na = nodes[rng.gen_range(0..n)];
        let nb = nodes[rng.gen_range(0..n)];
        if na != nb {
            nl.resistor(&format!("RX{k}"), na, nb, rng.gen_range(100.0..10_000.0))
                .unwrap();
        }
    }
    let v1 = rng.gen_range(-5.0..5.0);
    let i1 = rng.gen_range(-5.0..5.0) * 1.0e-4;
    nl.vdc("V1", nodes[0], Netlist::GROUND, v1).unwrap();
    nl.idc("I1", Netlist::GROUND, nodes[n - 1], i1).unwrap();
    (nl, v1, i1)
}

/// Re-solves `nl` with both sources scaled, returning all node voltages.
fn solve_scaled(nl: &Netlist, v1: f64, i1: f64, scale_v: f64, scale_i: f64) -> Vec<f64> {
    let mut copy = nl.clone();
    copy.remove_element("V1").unwrap();
    copy.remove_element("I1").unwrap();
    let p0 = copy.find_node("n0").unwrap();
    let last = (0..)
        .take_while(|k| copy.find_node(&format!("n{k}")).is_ok())
        .count()
        - 1;
    let pn = copy.find_node(&format!("n{last}")).unwrap();
    copy.vdc("V1", p0, Netlist::GROUND, v1 * scale_v).unwrap();
    copy.idc("I1", Netlist::GROUND, pn, i1 * scale_i).unwrap();
    let circuit = copy.compile().unwrap();
    let op = operating_point(&circuit, &DcOptions::default()).unwrap();
    circuit.node_ids().map(|id| op.voltage(id)).collect()
}

/// Superposition holds on linear networks: the response to both sources
/// equals the sum of the responses to each source alone.
#[test]
fn dc_superposition_on_linear_networks() {
    let mut rng = StdRng::seed_from_u64(0x50e1);
    for _ in 0..48 {
        let (nl, v1, i1) = random_resistive_network(&mut rng);
        let both = solve_scaled(&nl, v1, i1, 1.0, 1.0);
        let only_v = solve_scaled(&nl, v1, i1, 1.0, 0.0);
        let only_i = solve_scaled(&nl, v1, i1, 0.0, 1.0);
        for ((b, v), i) in both.iter().zip(&only_v).zip(&only_i) {
            assert!(
                (b - (v + i)).abs() < 1e-6 * b.abs().max(1.0),
                "superposition violated: {b} vs {v} + {i}"
            );
        }
    }
}

/// A transient run whose sources are all DC must stay at the operating
/// point (steady state is a fixed point of the integrator).
#[test]
fn dc_sources_are_a_transient_fixed_point() {
    let mut rng = StdRng::seed_from_u64(0xf1fed);
    for _ in 0..48 {
        let (mut nl, _, _) = random_resistive_network(&mut rng);
        let cap_pf = rng.gen_range(1.0..100.0);
        let a = nl.find_node("n1").unwrap();
        nl.capacitor("CP", a, Netlist::GROUND, cap_pf * 1e-12)
            .unwrap();
        let circuit = nl.compile().unwrap();
        let op = operating_point(&circuit, &DcOptions::default()).unwrap();
        let res = transient(&circuit, &TranOptions::new(1.0e-8)).unwrap();
        for node in circuit.node_ids() {
            let trace = res.trace(node).unwrap();
            let expected = op.voltage(node);
            for &v in trace {
                assert!(
                    (v - expected).abs() < 1e-6 + 1e-6 * expected.abs(),
                    "node drifted from {expected} to {v}"
                );
            }
        }
    }
}

/// SPICE export → import preserves element counts, kinds and values.
#[test]
fn spice_round_trip_preserves_elements() {
    let mut rng = StdRng::seed_from_u64(0x4011d);
    for _ in 0..48 {
        let (nl, _, _) = random_resistive_network(&mut rng);
        let deck = write_deck(&nl, "randomized round trip");
        let parsed = parse_deck(&deck).unwrap();
        assert_eq!(parsed.netlist.element_count(), nl.element_count());
        for (name, element) in nl.elements() {
            // Exported names keep their type prefix (they already start
            // with R/V/I here).
            let round = parsed.netlist.element(name).unwrap();
            match (element, round) {
                (Element::Resistor { value: a, .. }, Element::Resistor { value: b, .. }) => {
                    assert!((a - b).abs() < 1e-9 * a.abs());
                }
                (
                    Element::VoltageSource {
                        wave: SourceWave::Dc(a),
                        ..
                    },
                    Element::VoltageSource {
                        wave: SourceWave::Dc(b),
                        ..
                    },
                ) => {
                    assert!((a - b).abs() < 1e-12 + 1e-9 * a.abs());
                }
                (
                    Element::CurrentSource {
                        wave: SourceWave::Dc(a),
                        ..
                    },
                    Element::CurrentSource {
                        wave: SourceWave::Dc(b),
                        ..
                    },
                ) => {
                    assert!((a - b).abs() < 1e-12 + 1e-9 * a.abs());
                }
                (a, b) => panic!("kind changed: {a:?} vs {b:?}"),
            }
        }
    }
}

/// Scaling every source by k scales every node voltage by k (homogeneity
/// of linear networks).
#[test]
fn dc_homogeneity() {
    let mut rng = StdRng::seed_from_u64(0x4009);
    for _ in 0..48 {
        let (nl, v1, i1) = random_resistive_network(&mut rng);
        let k = rng.gen_range(0.1..10.0);
        let base = solve_scaled(&nl, v1, i1, 1.0, 1.0);
        let scaled = solve_scaled(&nl, v1, i1, k, k);
        for (b, s) in base.iter().zip(&scaled) {
            assert!(
                (s - k * b).abs() < 1e-6 * (1.0 + s.abs()),
                "homogeneity violated: {s} vs {k}·{b}"
            );
        }
    }
}
