//! Property tests of the solution-trust layer (seeded, deterministic —
//! see `xrand`).
//!
//! Two families:
//!
//! * randomized well-conditioned MNA-shaped systems must be solved by the
//!   dense kernel, the sparse kernel, and the cached-pattern
//!   refactorization fast path to answers that agree within their
//!   certified backward error;
//! * the `CHAOS_PERTURB_LU` drill — a silently corrupted factorization —
//!   must surface [`spicier::Error::UntrustedSolution`] from every entry
//!   point (raw kernels, the DC operating point, fault-isolated sweeps),
//!   never a clean exit with wrong numbers.

use spicier::analysis::dc::{operating_point, DcOptions};
use spicier::analysis::sweep::{par_try_map, SweepFailure, TryMapOptions};
use spicier::chaos::with_perturb_lu;
use spicier::linalg::dense::DenseSolver;
use spicier::linalg::sparse::SparseSolver;
use spicier::linalg::verify::{backward_error, bwerr_tol, inf_norm};
use spicier::linalg::{Solver, SparseLu, SparseMatrix, Triplets, DENSE_CUTOFF};
use spicier::netlist::Netlist;
use xrand::StdRng;

/// A random connected conductance network on `n` unknowns: a chain
/// backbone plus random extra branches. Only the edge list is returned;
/// [`stamp_network`] draws fresh conductances for it, so two stampings of
/// the same edge list share their sparsity pattern exactly (the stamp
/// sequence is identical) while differing in every value — the shape the
/// cached-pattern refactorization fast path is built for.
fn random_edges(rng: &mut StdRng, n: usize) -> Vec<(usize, usize)> {
    let mut edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
    for _ in 0..rng.gen_range(n..3 * n) {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i != j {
            edges.push((i, j));
        }
    }
    edges
}

/// Stamps `edges` as two-terminal conductances plus a per-node ground
/// leak, exactly like MNA assembly of a resistor network: the result is
/// symmetric, strictly diagonally dominant, and therefore comfortably
/// well-conditioned.
fn stamp_network(rng: &mut StdRng, n: usize, edges: &[(usize, usize)]) -> Triplets {
    let mut t = Triplets::new(n);
    for i in 0..n {
        t.add(i, i, rng.gen_range(1.0e-4..1.0e-2));
    }
    for &(i, j) in edges {
        let g = rng.gen_range(1.0e-3..1.0e-1);
        t.add(i, i, g);
        t.add(j, j, g);
        t.add(i, j, -g);
        t.add(j, i, -g);
    }
    t
}

fn random_rhs(rng: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(-1.0e-2..1.0e-2)).collect()
}

/// Measured backward error of `x` against the system assembled from `t`.
fn measured_bwerr(t: &Triplets, x: &[f64], b: &[f64]) -> f64 {
    let a = SparseMatrix::from_triplets(t);
    let ax = a.mul_vec(x);
    let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
    let (norm_a_inf, _) = a.norms();
    backward_error(inf_norm(&r), norm_a_inf, inf_norm(x), inf_norm(b))
}

/// Relative ∞-norm disagreement between two solutions.
fn rel_diff(a: &[f64], b: &[f64]) -> f64 {
    let scale = inf_norm(a).max(inf_norm(b)).max(f64::MIN_POSITIVE);
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max)
        / scale
}

/// The dense and sparse kernels must certify every solve of a random
/// well-conditioned MNA-shaped system and agree with each other to far
/// better than the certification tolerance, on both sides of the
/// dense/sparse cutoff.
#[test]
fn dense_and_sparse_kernels_agree_within_certified_error() {
    let mut rng = StdRng::seed_from_u64(0xbe44e5);
    let tol = bwerr_tol();
    for n in [12, 40, DENSE_CUTOFF + 10, DENSE_CUTOFF + 45] {
        for _ in 0..6 {
            let edges = random_edges(&mut rng, n);
            let t = stamp_network(&mut rng, n, &edges);
            let b = random_rhs(&mut rng, n);

            let mut xd = b.clone();
            let mut dense = DenseSolver::default();
            dense.solve_in_place(&t, &mut xd).unwrap();
            assert!(
                dense.last_quality().backward_error <= tol,
                "dense certification failed at n={n}: {:?}",
                dense.last_quality()
            );

            let mut xs = b.clone();
            let mut sparse = SparseSolver::default();
            sparse.solve_in_place(&t, &mut xs).unwrap();
            assert!(
                sparse.last_quality().backward_error <= tol,
                "sparse certification failed at n={n}: {:?}",
                sparse.last_quality()
            );

            // Both kernels' measured residuals back the certificates up.
            assert!(measured_bwerr(&t, &xd, &b) <= tol, "dense residual n={n}");
            assert!(measured_bwerr(&t, &xs, &b) <= tol, "sparse residual n={n}");

            let diff = rel_diff(&xd, &xs);
            assert!(
                diff < 1.0e-8,
                "kernels disagree at n={n}: relative diff {diff:.3e}"
            );
        }
    }
}

/// The cached-pattern refactorization fast path must produce the same
/// certified answers as a from-scratch dense solve when the values change
/// under a fixed sparsity pattern — the exact shape Newton iterations and
/// same-topology sweeps feed it.
#[test]
fn refactorization_path_agrees_with_dense_within_certified_error() {
    let mut rng = StdRng::seed_from_u64(0x5eed1e);
    let tol = bwerr_tol();
    for n in [25, 60, DENSE_CUTOFF + 25] {
        let edges = random_edges(&mut rng, n);
        let t0 = stamp_network(&mut rng, n, &edges);
        let mut lu = SparseLu::new();
        lu.factor(&SparseMatrix::from_triplets(&t0)).unwrap();
        // Re-stamp the same pattern with fresh values several times; every
        // refactorization must stay as trustworthy as the first factor.
        for round in 0..4 {
            let t = stamp_network(&mut rng, n, &edges);
            let b = random_rhs(&mut rng, n);
            lu.refactor(&SparseMatrix::from_triplets(&t)).unwrap();
            let mut xr = b.clone();
            lu.solve(&mut xr).unwrap();

            let mut xd = b.clone();
            DenseSolver::default().solve_in_place(&t, &mut xd).unwrap();

            let bwerr = measured_bwerr(&t, &xr, &b);
            assert!(
                bwerr <= tol,
                "refactor solve uncertifiable at n={n} round={round}: {bwerr:.3e}"
            );
            let diff = rel_diff(&xr, &xd);
            assert!(
                diff < 1.0e-8,
                "refactor vs dense disagree at n={n} round={round}: {diff:.3e}"
            );
        }
    }
}

/// Builds a small resistive test circuit (dense-kernel sized).
fn divider() -> spicier::Circuit {
    let mut nl = Netlist::new();
    let vin = nl.node("vin");
    let out = nl.node("out");
    nl.vdc("V1", vin, Netlist::GROUND, 3.3).unwrap();
    nl.resistor("R1", vin, out, 1.0e3).unwrap();
    nl.resistor("R2", out, Netlist::GROUND, 2.0e3).unwrap();
    nl.compile().unwrap()
}

/// The certifier drill: with `CHAOS_PERTURB_LU` corrupting one pivot of
/// every completed factorization, the raw kernels must return
/// `UntrustedSolution` — never a clean exit with wrong numbers.
#[test]
fn chaos_perturb_lu_is_caught_by_both_kernels() {
    let mut rng = StdRng::seed_from_u64(0xc4a05);
    for n in [30, DENSE_CUTOFF + 20] {
        let edges = random_edges(&mut rng, n);
        let t = stamp_network(&mut rng, n, &edges);
        let b = random_rhs(&mut rng, n);
        for (kernel, result) in [
            (
                "dense",
                with_perturb_lu(|| DenseSolver::default().solve_in_place(&t, &mut b.clone())),
            ),
            (
                "sparse",
                with_perturb_lu(|| SparseSolver::default().solve_in_place(&t, &mut b.clone())),
            ),
        ] {
            let err = result.expect_err(kernel);
            assert!(
                err.is_untrusted_solution(),
                "{kernel} kernel at n={n}: expected UntrustedSolution, got {err}"
            );
            assert!(err.is_non_retriable(), "{kernel} at n={n}");
        }
    }
}

/// The drill seen from the analysis layer: a DC operating point computed
/// through a corrupted factorization must fail with `UntrustedSolution`
/// immediately — the recovery ladder must not retry it into a false
/// convergence.
#[test]
fn chaos_perturb_lu_surfaces_untrusted_operating_point() {
    let circuit = divider();
    // Sanity: the clean solve certifies and reports a healthy residual.
    let op = operating_point(&circuit, &DcOptions::default()).unwrap();
    assert!(op.quality().backward_error <= bwerr_tol());

    let err = with_perturb_lu(|| operating_point(&circuit, &DcOptions::default()))
        .expect_err("corrupted factorization must not yield a clean operating point");
    assert!(err.is_untrusted_solution(), "got: {err}");
    let msg = err.to_string();
    assert!(msg.starts_with("untrusted solution"), "{msg}");
}

/// The drill seen from a sweep: a corner whose solves run under
/// `CHAOS_PERTURB_LU` is quarantined (recorded as
/// [`SweepFailure::Untrusted`], not retried), while its healthy
/// neighbours are unaffected.
#[test]
fn chaos_perturb_lu_corner_is_quarantined_in_sweeps() {
    let corners: Vec<usize> = (0..4).collect();
    let opts = TryMapOptions {
        retries: 2,
        max_workers: Some(2),
        ..TryMapOptions::default()
    };
    let (results, report) = par_try_map(corners, &opts, |&k| {
        let circuit = divider();
        let solve = || operating_point(&circuit, &DcOptions::default());
        let op = if k == 2 {
            with_perturb_lu(solve)
        } else {
            solve()
        }?;
        Ok(op.voltage(circuit.netlist().find_node("out").unwrap()))
    });
    assert_eq!(report.total, 4);
    assert_eq!(report.succeeded, 3);
    assert_eq!(report.quarantined(), 1);
    assert!(results[2].is_none());
    for (k, r) in results.iter().enumerate() {
        if k != 2 {
            assert!((r.unwrap() - 2.2).abs() < 1e-6);
        }
    }
    let failure = &report.failures[0];
    assert_eq!(failure.index, 2);
    assert_eq!(
        failure.attempts, 1,
        "untrusted corners must not burn retries: rerunning reproduces the same numbers"
    );
    assert!(matches!(failure.failure, SweepFailure::Untrusted { .. }));
    assert!(failure.failure.to_string().starts_with("quarantined:"));
    assert!(
        report.summary().contains("1 quarantined"),
        "{}",
        report.summary()
    );
}
