//! Integration tests for the telemetry layer: a failing analysis must
//! dump a flight-recorder JSONL trajectory identifying the failing rung
//! or corner, and every successful result must carry a telemetry rollup
//! even with tracing fully disabled.

use spicier::analysis::sweep::{par_try_map, TryMapOptions};
use spicier::analysis::tran::{transient, TranOptions};
use spicier::analysis::{operating_point, DcOptions};
use spicier::devices::DiodeModel;
use spicier::netlist::Netlist;
use spicier::{chaos, telemetry, Circuit, Error};
use std::path::PathBuf;
use std::sync::Mutex;

/// The dump path and ring are process-global: tests that redirect the
/// dump serialize on this lock.
static DUMP_LOCK: Mutex<()> = Mutex::new(());

fn diode_circuit() -> Circuit {
    let mut nl = Netlist::new();
    let a = nl.node("a");
    let d = nl.node("d");
    nl.vdc("V1", a, Netlist::GROUND, 3.3).unwrap();
    nl.resistor("R1", a, d, 6.0e3).unwrap();
    nl.diode("D1", d, Netlist::GROUND, DiodeModel::new())
        .unwrap();
    nl.compile().unwrap()
}

fn rc_circuit() -> Circuit {
    let mut nl = Netlist::new();
    let a = nl.node("a");
    let b = nl.node("b");
    nl.vdc("V1", a, Netlist::GROUND, 1.0).unwrap();
    nl.resistor("R1", a, b, 1.0e3).unwrap();
    nl.capacitor("C1", b, Netlist::GROUND, 1.0e-9).unwrap();
    nl.compile().unwrap()
}

fn dump_file(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "spicier-telemetry-test-{}-{name}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn failure_dump_names_failing_rung() {
    let _guard = DUMP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let path = dump_file("dc");
    telemetry::set_dump_path(Some(path.clone()));
    let c = diode_circuit();
    // A NaN-poisoned stamp exhausts every rung of the recovery ladder.
    let err = telemetry::with_trace(|| {
        chaos::with_nan_stamp(|| operating_point(&c, &DcOptions::default()).unwrap_err())
    });
    telemetry::set_dump_path(None);
    assert!(matches!(err, Error::DcNoConvergence { .. }), "{err}");

    let dump = std::fs::read_to_string(&path).expect("failure must write the flight recorder");
    let _ = std::fs::remove_file(&path);
    assert!(!dump.is_empty());
    assert!(dump.contains("\"dump_begin\""), "{dump}");
    assert!(dump.contains("DcNoConvergence"), "{dump}");
    // The trajectory identifies the rungs that were attempted (events are
    // scoped under per-rung spans) and the final failure record.
    assert!(dump.contains("gmin-stepping"), "{dump}");
    assert!(dump.contains("\"failure\""), "{dump}");
    // Every line is one standalone JSON object.
    for line in dump.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }
}

#[test]
fn corner_failure_dump_identifies_corner() {
    let _guard = DUMP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let path = dump_file("corner");
    telemetry::set_dump_path(Some(path.clone()));
    // `with_trace` is thread-scoped, so pin the sweep to the calling
    // thread; the env-gated campaign path enables all workers instead.
    let opts = TryMapOptions {
        max_workers: Some(1),
        ..TryMapOptions::default()
    };
    let (_, report) = telemetry::with_trace(|| {
        par_try_map((0..4).collect(), &opts, |&i: &i32| {
            if i == 2 {
                return Err(Error::SingularMatrix { column: 7 });
            }
            Ok(i)
        })
    });
    telemetry::set_dump_path(None);
    assert_eq!(report.failures.len(), 1);

    let dump = std::fs::read_to_string(&path).expect("corner failure must dump");
    let _ = std::fs::remove_file(&path);
    assert!(dump.contains("CornerFailure"), "{dump}");
    assert!(dump.contains("corner 2"), "{dump}");
    assert!(dump.contains("corner_failed"), "{dump}");
}

#[test]
fn results_carry_rollup_without_tracing() {
    // No tracing, no env vars: the per-result rollup is still populated
    // from counters the analyses track anyway.
    let c = rc_circuit();
    let op = operating_point(&c, &DcOptions::default()).unwrap();
    assert_eq!(
        op.telemetry().newton_iterations,
        op.report().total_iterations() as u64
    );
    assert!(op.telemetry().lu.full_factors >= 1);
    assert!(op.telemetry().worst_backward_error.is_some());

    let res = transient(&c, &TranOptions::new(1.0e-7)).unwrap();
    assert_eq!(res.telemetry().accepted_steps, res.accepted_steps() as u64);
    assert_eq!(res.telemetry().rejected_steps, res.rejected_steps() as u64);
    assert_eq!(
        res.telemetry().newton_iterations,
        res.newton_iterations() as u64
    );
    assert!(res.telemetry().wall > std::time::Duration::ZERO);
    assert!(
        res.telemetry().lu.solves as u64 >= res.telemetry().newton_iterations,
        "every Newton iteration performs at least one solve: {}",
        res.telemetry().lu
    );
}
