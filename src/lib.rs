//! Umbrella crate for the reproduction of *"Design For Testability Method
//! for CML Digital Circuits"* (B. Antaki, Y. Savaria, S. M. I. Adham,
//! N. Xiong — DATE 1999).
//!
//! This crate re-exports the workspace members so downstream users can
//! depend on a single package:
//!
//! * [`spicier`] — the analog circuit simulator substrate (MNA,
//!   Newton–Raphson DC, adaptive transient, dense + sparse LU);
//! * [`waveform`] — waveform storage and measurement (crossings, delays,
//!   swings, settling);
//! * [`cml_cells`] — the CML standard-cell library (buffer, stacked gates,
//!   latches, the Figure 3 chain);
//! * [`faults`] — circuit-level defect injection (pipes, shorts, bridges,
//!   opens);
//! * [`cml_dft`] — **the paper's contribution**: built-in voltage-excursion
//!   detectors (variants 1–3), load sharing, multi-emitter optimization,
//!   overhead accounting, the §6.6 toggle-test flow;
//! * [`cml_logic`] — gate-level logic simulation for the §6.6 experiments;
//! * [`cml_bench`] — the experiment harness regenerating every table and
//!   figure of the paper.
//!
//! See the repository README for a tour, `DESIGN.md` for the architecture
//! and experiment index, and `EXPERIMENTS.md` for paper-vs-measured
//! results.
//!
//! # Example
//!
//! ```
//! use cml_dft_repro::cml_cells::{CmlCircuitBuilder, CmlProcess};
//! use cml_dft_repro::spicier::analysis::dc::{operating_point, DcOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = CmlCircuitBuilder::new(CmlProcess::paper());
//! let input = b.diff("a");
//! b.drive_static("a", input, true)?;
//! let cell = b.buffer("X1", input)?;
//! let circuit = b.finish().compile()?;
//! let op = operating_point(&circuit, &DcOptions::default())?;
//! assert!((op.voltage(cell.output.p) - 3.3).abs() < 0.05);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use cml_bench;
pub use cml_cells;
pub use cml_dft;
pub use cml_logic;
pub use faults;
pub use spicier;
pub use waveform;
